//! Eval-stack ↔ simulator integration: the differential registry's
//! priced twins flow through the *engine* (registered workloads ×
//! models, summary-cached, replayed into accumulators) while the exact
//! same registry rows execute functionally on the simulator — one
//! scenario list, two backends, both checked.

use darth_analog::adc::AdcKind;
use darth_eval::Engine;
use darth_pum::model::DarthModel;
use darth_sim::DiffHarness;

#[test]
fn differential_twins_price_identically_through_the_engine() {
    let model = DarthModel::paper(AdcKind::Sar);
    let harness = DiffHarness::standard();

    // Register every priced twin on a fresh engine next to the paper
    // DARTH model.
    let mut engine = Engine::new();
    let mut twin_names = std::collections::BTreeSet::new();
    for case in harness.cases() {
        let twin = case.priced.as_ref().expect("standard cases are paired");
        // The AES twins repeat across FIPS vectors; the engine needs each
        // workload once.
        if twin_names.insert(twin.name()) {
            engine.register_workload(dyn_clone_twin(&twin.name()));
        }
    }
    engine.register_model(Box::new(DarthModel::paper(AdcKind::Sar)));
    let matrix = engine.run();

    // Execute the registry on the simulator, pricing the twins directly.
    let report = harness.verify_priced(&model).expect("harness runs");
    assert!(report.all_exact(), "{}", report.summary());

    // Engine-cached pricing and the harness's direct accumulator pricing
    // must agree cell-for-cell on every twin.
    for case in &report.cases {
        let direct = case.cost.as_ref().expect("harness priced the twin");
        let twin = direct.workload.clone();
        let engine_cell = matrix
            .cell(&twin, "darth-sar")
            .unwrap_or_else(|| panic!("engine lost twin {twin}"));
        assert_eq!(engine_cell.latency_s.to_bits(), direct.latency_s.to_bits());
        assert_eq!(
            engine_cell.energy_per_item_j.to_bits(),
            direct.energy_per_item_j.to_bits()
        );
    }
    assert!(twin_names.len() >= 5, "twins: {twin_names:?}");
}

/// Rebuilds a boxed twin workload from its registry name (the standard
/// cases only use AES variants, GEMM shapes and the reduction).
fn dyn_clone_twin(name: &str) -> Box<dyn darth_pum::eval::Workload> {
    use darth_apps::aes::workload::{AesVariant, AesWorkload};
    use darth_apps::cnn::program::ConvExec;
    use darth_apps::gemm::GemmExec;
    use darth_apps::reduce::ReduceExec;
    match name {
        "aes-128" => Box::new(AesWorkload {
            variant: AesVariant::Aes128,
        }),
        "aes-192" => Box::new(AesWorkload {
            variant: AesVariant::Aes192,
        }),
        "aes-256" => Box::new(AesWorkload {
            variant: AesVariant::Aes256,
        }),
        n if n == darth_pum::eval::Workload::name(&GemmExec::standard().workload()) => {
            Box::new(GemmExec::standard().workload())
        }
        n if n == darth_pum::eval::Workload::name(&ConvExec::standard().workload()) => {
            Box::new(ConvExec::standard().workload())
        }
        n if n == darth_pum::eval::Workload::name(&ReduceExec::standard().workload()) => {
            Box::new(ReduceExec::standard().workload())
        }
        other => panic!("unknown twin {other}"),
    }
}
