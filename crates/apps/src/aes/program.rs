//! AES compiled to a self-contained DARTH-PUM ISA program — via the
//! `darth_kir` kernel-IR compiler.
//!
//! [`AesDarth`](crate::aes::mapping::AesDarth) executes AES on the
//! functional tile, but the host intervenes between kernels (it unpacks
//! MixColumns columns, decodes parities, and repacks bytes in software).
//! This module removes the host entirely: [`AesExec`] builds an AES
//! block encryption as a kernel IR — every round step, including the
//! MixColumns bit unpack/parity/repack plumbing, is an IR op lowering to
//! one real `shr`/`and`/`eload`/`mvm`/`shl`/`or` instruction — and the
//! compiler pipeline (verify → allocate → lower) emits the encoded
//! program. The ~500 lines of hand-scheduled emission this file used to
//! carry are retired; the kernel is now ~80 lines of IR building.
//!
//! Placement notes that survive the compiler:
//!
//! * the GF(2) MixColumns matrix is programmed **raw** (0/1 weights in
//!   SLC cells): the ideal verification tile reads exact bitline counts,
//!   so parity is one `and` with an all-ones register — no host;
//! * the S-box is *self-addressing* (a state byte is its own lookup
//!   address), so its four registers are pinned at table registers 0–3
//!   with [`KirBuilder::const_u_at`] — the one placement the allocator
//!   must not choose;
//! * all other gather tables (`ShiftRows` permutation, MVM input
//!   addresses, repack addresses) are IR address tables: they reference
//!   *slots*, and the compiler resolves the global
//!   `register × elements + element` addresses after allocation.
//!
//! The compiled job is the flagship case of the `darth_sim` differential
//! harness: FIPS-197 vectors run through decode → dispatch → ACE/DCE and
//! must match [`Aes::encrypt_block`] byte-for-byte.

use super::gf2;
use super::golden::{Aes, KeySize, SBOX};
use darth_isa::instruction::IsaBoolOp;
use darth_kir::{pack_bit_planes, unpack_bit_planes, CompiledKernel, KernelIr, KirBuilder, Value};
use darth_pum::eval::{ExecJob, ExecOutput, Executable, SplitJob};
use darth_pum::hct::HctConfig;

/// Pipeline roles.
const P_STATE: u16 = 0;
const P_TABLE: u16 = 1;
const P_IN: u16 = 2;
const P_LAND: u16 = 3;

/// Elements per vector register in the compiled tile.
const ELEMENTS: usize = 64;

/// One AES block encryption compiled to a self-contained ISA job.
#[derive(Debug, Clone)]
pub struct AesExec {
    name: String,
    golden: Aes,
    plaintext: [u8; 16],
}

impl AesExec {
    /// An AES-128 job.
    pub fn aes128(name: impl Into<String>, key: &[u8; 16], plaintext: [u8; 16]) -> Self {
        AesExec {
            name: name.into(),
            golden: Aes::new_128(key),
            plaintext,
        }
    }

    /// An AES-192 job.
    pub fn aes192(name: impl Into<String>, key: &[u8; 24], plaintext: [u8; 16]) -> Self {
        AesExec {
            name: name.into(),
            golden: Aes::new_192(key),
            plaintext,
        }
    }

    /// An AES-256 job.
    pub fn aes256(name: impl Into<String>, key: &[u8; 32], plaintext: [u8; 16]) -> Self {
        AesExec {
            name: name.into(),
            golden: Aes::new_256(key),
            plaintext,
        }
    }

    /// The FIPS-197 Appendix B worked example (AES-128).
    pub fn fips197_appendix_b() -> Self {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let plaintext = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        AesExec::aes128("aes-128/fips197-b", &key, plaintext)
    }

    /// The FIPS-197 Appendix C vector for the given key size (key bytes
    /// `00 01 02 …`, plaintext `00 11 22 … ff`).
    pub fn fips197_appendix_c(size: KeySize) -> Self {
        let plaintext: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        match size {
            KeySize::Aes128 => {
                let key: [u8; 16] = core::array::from_fn(|i| i as u8);
                AesExec::aes128("aes-128/fips197-c", &key, plaintext)
            }
            KeySize::Aes192 => {
                let key: [u8; 24] = core::array::from_fn(|i| i as u8);
                AesExec::aes192("aes-192/fips197-c", &key, plaintext)
            }
            KeySize::Aes256 => {
                let key: [u8; 32] = core::array::from_fn(|i| i as u8);
                AesExec::aes256("aes-256/fips197-c", &key, plaintext)
            }
        }
    }

    /// The golden context backing this job.
    pub fn golden_model(&self) -> &Aes {
        &self.golden
    }

    /// The tile geometry the compiled program targets: four pipelines
    /// (state, table, MVM input, landing), 16-bit depth, SLC MixColumns.
    pub fn tile_config() -> HctConfig {
        HctConfig {
            functional_pipelines: 4,
            functional_depth: 16,
            functional_elements: ELEMENTS,
            functional_vrs: 40,
            functional_ace_arrays: 2,
            functional_bits_per_cell: 1,
            ..HctConfig::small_test()
        }
    }

    /// Builds the block encryption as a kernel IR: one vACore for the
    /// GF(2) MixColumns matrix, the S-box/round-key/mask constants and
    /// gather-address tables as setup, the plaintext as the per-request
    /// input, and the rounds as the body.
    pub fn build_ir(&self) -> KernelIr {
        let mut b = KirBuilder::new(&self.name, AesExec::tile_config());
        // The raw 0/1 GF(2) matrix: rows are input bits (wordlines),
        // columns output bits (bitlines); the exact bitline count's LSB
        // is the output parity.
        let mc = b.vacore(gf2::mixcolumns_matrix(), 1, 1, 1, false);

        // S-box: 256 entries across four *pinned* table registers so
        // entry `v` sits at global address `v` — a state byte is its own
        // lookup address.
        for chunk in 0..4u8 {
            let cells: Vec<(u8, u64)> = SBOX[usize::from(chunk) * 64..][..64]
                .iter()
                .enumerate()
                .map(|(e, &s)| (e as u8, u64::from(s)))
                .collect();
            b.const_u_at(P_TABLE, chunk, format!("sbox{chunk}"), &cells);
        }
        // Round keys, one register each.
        let rks: Vec<Value> = self
            .golden
            .round_keys()
            .iter()
            .enumerate()
            .map(|(r, rk)| {
                let cells: Vec<(u8, u64)> = rk
                    .iter()
                    .enumerate()
                    .map(|(e, &v)| (e as u8, u64::from(v)))
                    .collect();
                b.const_u(P_TABLE, format!("rk{r}"), &cells)
            })
            .collect();

        // The state register doubles as the request input: requests
        // write the plaintext, the body transforms it in place, and the
        // readback below reports it as the ciphertext.
        let state = b.input(P_STATE, "state", false, &self.plaintext.map(i64::from));
        // Bit-extraction mask (1 in every state element).
        let one_cells: Vec<(u8, u64)> = (0..16).map(|e| (e, 1)).collect();
        let ones = b.const_u(P_STATE, "ones", &one_cells);
        // Byte mask over the whole register: keeps the unused tail
        // elements inside the table's address space after packing.
        let mask_cells: Vec<(u8, u64)> = (0..ELEMENTS as u8).map(|e| (e, 0xFF)).collect();
        let mask8 = b.const_u(P_STATE, "mask8", &mask_cells);

        // ShiftRows staging slot and permutation addresses:
        // shifted[r + 4c] reads the staging copy at byte r + 4·((c+r) mod 4).
        let stage = b.slot(P_TABLE, "stage");
        let shift_entries: Vec<(u8, Value, u64)> = (0..4u64)
            .flat_map(|r| (0..4u64).map(move |c| ((r + 4 * c) as u8, r + 4 * ((c + r) % 4))))
            .map(|(dst, src)| (dst, stage, src))
            .collect();
        let shiftaddr = b.addr_table(P_STATE, "shiftaddr", &shift_entries);

        // Staged state bit planes and landed column parities.
        let bits: Vec<Value> = (0..8).map(|k| b.slot(P_TABLE, format!("bit{k}"))).collect();
        let par: Vec<Value> = (0..4).map(|c| b.slot(P_TABLE, format!("par{c}"))).collect();
        // Pack gather addresses: state byte `e`, bit `k` reads output
        // bit `8·(e mod 4) + k` of column `e / 4`'s landed parity.
        let packaddr: Vec<Value> = (0..8u64)
            .map(|k| {
                let entries: Vec<(u8, Value, u64)> = (0..16u64)
                    .map(|e| (e as u8, par[(e / 4) as usize], 8 * (e % 4) + k))
                    .collect();
                b.addr_table(P_STATE, format!("packaddr{k}"), &entries)
            })
            .collect();
        // MVM input gather addresses: input bit `j` of column `c` is
        // bit `j mod 8` of state byte `4c + j/8` (the gf2 wordline
        // order).
        let mvmaddr: Vec<Value> = (0..4u64)
            .map(|c| {
                let entries: Vec<(u8, Value, u64)> = (0..32u64)
                    .map(|j| (j as u8, bits[(j % 8) as usize], 4 * c + j / 8))
                    .collect();
                b.addr_table(P_IN, format!("mvmaddr{c}"), &entries)
            })
            .collect();
        // Parity mask in the landing pipeline (1 across the 32 bitlines).
        let ones32_cells: Vec<(u8, u64)> = (0..32).map(|e| (e, 1)).collect();
        let ones32 = b.const_u(P_LAND, "ones32", &ones32_cells);

        let add_round_key = |b: &mut KirBuilder, rk: Value| {
            let key = b.copy_to(P_STATE, rk);
            b.bool_into(state, IsaBoolOp::Xor, state, key);
        };
        // SubBytes: each state byte is its own S-box gather address.
        let sub_bytes = |b: &mut KirBuilder| b.gather_into(state, state, P_TABLE);
        // ShiftRows: stage the state into the table pipeline, gather it
        // back through the constant permutation addresses.
        let shift_rows = |b: &mut KirBuilder| {
            b.mov(stage, state);
            b.gather_into(state, shiftaddr, P_TABLE);
        };
        // MixColumns: unpack the state into bit planes, gather each
        // column's 32 wordline bits, run the analog MVM, mask the
        // bitline counts down to parities, and pack the output planes
        // back into state bytes.
        let mix_columns = |b: &mut KirBuilder| {
            unpack_bit_planes(b, state, ones, &bits);
            for c in 0..4 {
                let input = b.gather(mvmaddr[c], P_TABLE);
                let acc = b.mvm(mc, input, P_LAND);
                let parity = b.bool_op(IsaBoolOp::And, acc, ones32);
                b.mov(par[c], parity);
            }
            pack_bit_planes(b, &packaddr, P_TABLE, mask8, state);
        };

        let rounds = self.golden.rounds();
        add_round_key(&mut b, rks[0]);
        for &rk in &rks[1..rounds] {
            sub_bytes(&mut b);
            shift_rows(&mut b);
            mix_columns(&mut b);
            add_round_key(&mut b, rk);
        }
        sub_bytes(&mut b);
        shift_rows(&mut b);
        add_round_key(&mut b, rks[rounds]);

        b.readback("ciphertext", state, 16, false);
        b.finish()
    }

    /// Compiles the kernel through the `darth_kir` pipeline.
    ///
    /// # Errors
    ///
    /// Propagates compiler diagnostics (none occur for this fixed
    /// kernel; the channel keeps the API honest).
    pub fn compiled(&self) -> darth_pum::Result<CompiledKernel> {
        Ok(self.build_ir().compile()?)
    }

    /// The split form for serving: halt-free setup, per-request
    /// plaintext stub, resident body.
    ///
    /// # Errors
    ///
    /// Propagates compiler diagnostics.
    pub fn split_job(&self) -> darth_pum::Result<SplitJob> {
        Ok(self.compiled()?.into_split_job())
    }

    /// The input payload for a plaintext, shaped for
    /// [`CompiledKernel::input_program`] (one payload per input slot).
    pub fn input_cells(plaintext: &[u8; 16]) -> Vec<Vec<i64>> {
        vec![plaintext.iter().map(|&v| i64::from(v)).collect()]
    }

    /// The encoded per-request input section for `plaintext`: 16
    /// `wimm`s into the state register, halt-free. Serving paths hold
    /// the [`CompiledKernel`] and restage without recompiling; this
    /// convenience recompiles.
    ///
    /// # Errors
    ///
    /// Propagates compiler diagnostics.
    pub fn input_program(&self, plaintext: &[u8; 16]) -> darth_pum::Result<Vec<u8>> {
        self.compiled()?
            .input_program(&AesExec::input_cells(plaintext))
            .map_err(darth_pum::Error::from)
    }

    /// Golden ciphertext for an arbitrary per-request plaintext under
    /// this job's key (shape-matched to the job's readbacks).
    pub fn golden_for(&self, plaintext: &[u8; 16]) -> Vec<ExecOutput> {
        let ct = self.golden.encrypt_block(plaintext);
        vec![ExecOutput {
            label: "ciphertext".into(),
            cells: ct.iter().map(|&v| i64::from(v)).collect(),
        }]
    }
}

impl Executable for AesExec {
    fn exec_name(&self) -> String {
        self.name.clone()
    }

    fn job(&self) -> darth_pum::Result<ExecJob> {
        Ok(self.compiled()?.exec_job())
    }

    fn golden(&self) -> darth_pum::Result<Vec<ExecOutput>> {
        Ok(self.golden_for(&self.plaintext))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::execute_job;
    use darth_isa::instruction::Instruction;

    /// Executes a compiled job on a fresh chip and reads the ciphertext
    /// through the job's own readbacks.
    fn run(exec: &AesExec) -> [u8; 16] {
        let job = exec.job().expect("compiles");
        let outputs = execute_job(&job);
        assert_eq!(outputs.len(), 1);
        assert_eq!(outputs[0].label, "ciphertext");
        core::array::from_fn(|i| outputs[0].cells[i] as u8)
    }

    #[test]
    fn appendix_b_vector_matches() {
        let exec = AesExec::fips197_appendix_b();
        assert_eq!(
            run(&exec),
            [
                0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
                0x0b, 0x32
            ]
        );
    }

    #[test]
    fn appendix_c_all_key_sizes_match_golden() {
        for size in [KeySize::Aes128, KeySize::Aes192, KeySize::Aes256] {
            let exec = AesExec::fips197_appendix_c(size);
            let golden = exec.golden().expect("golden");
            let got = run(&exec);
            let cells: Vec<i64> = got.iter().map(|&v| i64::from(v)).collect();
            assert_eq!(cells, golden[0].cells, "{:?}", size);
        }
    }

    #[test]
    fn arbitrary_key_and_block_match_golden() {
        let key = *b"isa-compiled-key";
        let block: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(73).wrapping_add(9));
        let exec = AesExec::aes128("aes-128/custom", &key, block);
        assert_eq!(run(&exec), Aes::new_128(&key).encrypt_block(&block));
    }

    #[test]
    fn program_is_fully_self_contained() {
        // No instruction needs host data beyond the one staged matrix.
        let exec = AesExec::fips197_appendix_b();
        let job = exec.job().expect("compiles");
        let program = job.decoded_program().expect("decodes");
        assert_eq!(job.data.matrices.len(), 1);
        assert!(job.data.vectors.is_empty());
        assert!(program.ends_with_halt());
        // 128-bit job: setup + 10 rounds land in the ~1.5k range.
        assert!(program.len() > 1000, "len {}", program.len());
    }

    #[test]
    fn split_concatenation_is_exactly_the_monolithic_program() {
        for size in [KeySize::Aes128, KeySize::Aes192, KeySize::Aes256] {
            let exec = AesExec::fips197_appendix_c(size);
            let job = exec.job().expect("compiles");
            let kernel = exec.compiled().expect("compiles");
            let input = kernel.default_input_program().to_vec();
            assert_eq!(
                input,
                exec.input_program(&exec.plaintext).expect("encodes"),
                "{size:?}"
            );
            let full = kernel.split().full_job(&input);
            assert_eq!(full.program, job.program, "{size:?}");
            assert_eq!(full.tile, job.tile, "{size:?}");
            assert_eq!(full.data, job.data, "{size:?}");
            assert_eq!(full.readbacks, job.readbacks, "{size:?}");
            // Sections keep the serving invariants: halt-free setup and
            // input, body ends with halt.
            kernel.split().check_invariants().expect("invariants hold");
            let stub = darth_isa::encode::decode_program(&input).expect("decodes");
            assert!(stub.is_halt_free(), "{size:?}");
            assert!(stub
                .iter()
                .all(|inst| matches!(inst, Instruction::WriteImm { .. })));
        }
    }

    #[test]
    fn key_sizes_scale_the_program() {
        let p128 = AesExec::fips197_appendix_c(KeySize::Aes128)
            .job()
            .expect("compiles")
            .instruction_count();
        let p256 = AesExec::fips197_appendix_c(KeySize::Aes256)
            .job()
            .expect("compiles")
            .instruction_count();
        assert!(p256 > p128);
    }
}
