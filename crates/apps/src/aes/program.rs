//! AES compiled to a self-contained DARTH-PUM ISA program.
//!
//! [`AesDarth`](crate::aes::mapping::AesDarth) executes AES on the
//! functional tile, but the host intervenes between kernels (it unpacks
//! MixColumns columns, decodes parities, and repacks bytes in software).
//! This module removes the host entirely: [`AesExec`] *compiles* an AES
//! block encryption into one [`darth_isa`] instruction stream that a
//! machine executes start-to-finish with no intervention — every round
//! step, including the MixColumns bit unpack/parity/repack plumbing, is
//! real `shr`/`and`/`eload`/`mvm`/`shl`/`or` instructions over pipeline
//! registers.
//!
//! Placement differences from the host-assisted mapping:
//!
//! * the GF(2) MixColumns matrix is programmed **raw** (0/1 weights in
//!   SLC cells) instead of ±1-remapped: the ideal verification tile reads
//!   exact bitline counts, so parity is one `and` with an all-ones
//!   register — no compensation arithmetic, and therefore no host;
//! * bit unpacking is 8 `shr`+`and` pairs over the whole state register,
//!   staged to the table pipeline and gathered per column through
//!   constant address registers (the same element-wise load datapath as
//!   SubBytes);
//! * repacking gathers each output bit plane from the landed parity
//!   registers and ORs the shifted planes back into state bytes.
//!
//! The compiled job is the flagship case of the `darth_sim` differential
//! harness: FIPS-197 vectors run through decode → dispatch → ACE/DCE and
//! must match [`Aes::encrypt_block`] byte-for-byte.

use super::gf2;
use super::golden::{Aes, KeySize, SBOX};
use darth_isa::instruction::{Instruction, IsaBoolOp, PipelineId, Program, VaCoreId, Vr};
use darth_pum::chip::SideChannel;
use darth_pum::eval::{ExecJob, ExecOutput, Executable, Readback, SplitJob};
use darth_pum::hct::HctConfig;

/// Pipeline roles.
const P_STATE: u16 = 0;
const P_TABLE: u16 = 1;
const P_IN: u16 = 2;
const P_LAND: u16 = 3;

/// State-pipeline register map.
const SV_STATE: u8 = 0;
const SV_KEYTMP: u8 = 1;
const SV_ONES: u8 = 2;
const SV_SHIFTADDR: u8 = 3;
const SV_BIT0: u8 = 4; // ..=11: bit plane k of the state bytes
const SV_PB0: u8 = 12; // ..=19: gathered output bit plane k
const SV_PACKADDR0: u8 = 20; // ..=27: pack gather addresses for bit k
const SV_PACKACC: u8 = 28;
const SV_PACKTMP: u8 = 29;
const SV_MASK8: u8 = 30;

/// Table-pipeline register map.
const TV_SBOX0: u8 = 0; // ..=3: the 256-entry S-box
const TV_STAGE: u8 = 4; // ShiftRows staging copy
const TV_RK0: u8 = 5; // ..=19: one register per round key
const TV_BIT0: u8 = 20; // ..=27: staged state bit planes
const TV_PAR0: u8 = 28; // ..=31: landed parity bits per column

/// Input-pipeline register map.
const IV_ADDR0: u8 = 0; // ..=3: per-column MVM input gather addresses
const IV_BITS: u8 = 4; // gathered 32-bit MVM input vector

/// Landing-pipeline register map: column `c` reduces into register `4c`
/// (its partial product and IIU scratch sit directly above), parity into
/// `4c + 3`.
const LV_ONES32: u8 = 16;

/// Elements per vector register in the compiled tile.
const ELEMENTS: u64 = 64;

/// One AES block encryption compiled to a self-contained ISA job.
#[derive(Debug, Clone)]
pub struct AesExec {
    name: String,
    golden: Aes,
    plaintext: [u8; 16],
}

impl AesExec {
    /// An AES-128 job.
    pub fn aes128(name: impl Into<String>, key: &[u8; 16], plaintext: [u8; 16]) -> Self {
        AesExec {
            name: name.into(),
            golden: Aes::new_128(key),
            plaintext,
        }
    }

    /// An AES-192 job.
    pub fn aes192(name: impl Into<String>, key: &[u8; 24], plaintext: [u8; 16]) -> Self {
        AesExec {
            name: name.into(),
            golden: Aes::new_192(key),
            plaintext,
        }
    }

    /// An AES-256 job.
    pub fn aes256(name: impl Into<String>, key: &[u8; 32], plaintext: [u8; 16]) -> Self {
        AesExec {
            name: name.into(),
            golden: Aes::new_256(key),
            plaintext,
        }
    }

    /// The FIPS-197 Appendix B worked example (AES-128).
    pub fn fips197_appendix_b() -> Self {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let plaintext = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        AesExec::aes128("aes-128/fips197-b", &key, plaintext)
    }

    /// The FIPS-197 Appendix C vector for the given key size (key bytes
    /// `00 01 02 …`, plaintext `00 11 22 … ff`).
    pub fn fips197_appendix_c(size: KeySize) -> Self {
        let plaintext: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        match size {
            KeySize::Aes128 => {
                let key: [u8; 16] = core::array::from_fn(|i| i as u8);
                AesExec::aes128("aes-128/fips197-c", &key, plaintext)
            }
            KeySize::Aes192 => {
                let key: [u8; 24] = core::array::from_fn(|i| i as u8);
                AesExec::aes192("aes-192/fips197-c", &key, plaintext)
            }
            KeySize::Aes256 => {
                let key: [u8; 32] = core::array::from_fn(|i| i as u8);
                AesExec::aes256("aes-256/fips197-c", &key, plaintext)
            }
        }
    }

    /// The golden context backing this job.
    pub fn golden_model(&self) -> &Aes {
        &self.golden
    }

    /// The tile geometry the compiled program targets: four pipelines
    /// (state, table, MVM input, landing), 16-bit depth, SLC MixColumns.
    pub fn tile_config() -> HctConfig {
        HctConfig {
            functional_pipelines: 4,
            functional_depth: 16,
            functional_elements: ELEMENTS as usize,
            functional_vrs: 40,
            functional_ace_arrays: 2,
            ..HctConfig::small_test()
        }
    }

    /// Compiles the block encryption into a program plus its staged data.
    ///
    /// # Errors
    ///
    /// Propagates side-channel staging errors.
    pub fn compile(&self) -> darth_pum::Result<(Program, SideChannel)> {
        let mut data = SideChannel::new();
        // The raw 0/1 GF(2) matrix: rows are input bits (wordlines),
        // columns output bits (bitlines); the exact bitline count's LSB
        // is the output parity.
        let matrix_handle = data.stage_matrix(gf2::mixcolumns_matrix())?;

        let mut p = Program::new();
        p.push(Instruction::AllocVaCore {
            vacore: VaCoreId(0),
            element_bits: 1,
            bits_per_cell: 1,
            input_bits: 1,
            input_signed: false,
        });
        p.push(Instruction::ProgMatrix {
            vacore: VaCoreId(0),
            matrix_handle,
        });
        self.emit_constants(&mut p);
        self.emit_plaintext(&mut p);
        let rounds = self.golden.rounds();
        emit_add_round_key(&mut p, 0);
        for round in 1..rounds {
            emit_sub_bytes(&mut p);
            emit_shift_rows(&mut p);
            emit_mix_columns(&mut p);
            emit_add_round_key(&mut p, round);
        }
        emit_sub_bytes(&mut p);
        emit_shift_rows(&mut p);
        emit_add_round_key(&mut p, rounds);
        p.push(Instruction::Halt);
        Ok((p, data))
    }

    /// Compiles the block encryption factored for serving: the
    /// request-invariant setup (vACore allocation, GF(2) matrix, S-box,
    /// round keys, masks, gather addresses) and compute body (the
    /// rounds, ending in `halt`) as separate sections, with the
    /// per-request plaintext load left to
    /// [`AesExec::input_program`]. `setup` ‖ `input` ‖ `body` is exactly
    /// the monolithic [`AesExec::compile`] stream — `compile` already
    /// emits in that order, and the concatenation test pins it.
    ///
    /// # Errors
    ///
    /// Propagates side-channel staging errors.
    pub fn split_job(&self) -> darth_pum::Result<SplitJob> {
        let mut data = SideChannel::new();
        let matrix_handle = data.stage_matrix(gf2::mixcolumns_matrix())?;

        let mut setup = Program::new();
        setup.push(Instruction::AllocVaCore {
            vacore: VaCoreId(0),
            element_bits: 1,
            bits_per_cell: 1,
            input_bits: 1,
            input_signed: false,
        });
        setup.push(Instruction::ProgMatrix {
            vacore: VaCoreId(0),
            matrix_handle,
        });
        self.emit_constants(&mut setup);

        let mut body = Program::new();
        let rounds = self.golden.rounds();
        emit_add_round_key(&mut body, 0);
        for round in 1..rounds {
            emit_sub_bytes(&mut body);
            emit_shift_rows(&mut body);
            emit_mix_columns(&mut body);
            emit_add_round_key(&mut body, round);
        }
        emit_sub_bytes(&mut body);
        emit_shift_rows(&mut body);
        emit_add_round_key(&mut body, rounds);
        body.push(Instruction::Halt);

        Ok(SplitJob {
            name: self.name.clone(),
            tile: AesExec::tile_config(),
            setup: darth_isa::encode::encode_program(&setup),
            body: darth_isa::encode::encode_program(&body),
            data,
            readbacks: vec![Readback {
                label: "ciphertext".into(),
                pipe: P_STATE,
                vr: SV_STATE,
                elements: 16,
                signed: false,
            }],
        })
    }

    /// The encoded per-request input section for `plaintext`: 16 `wimm`s
    /// into the state register, halt-free (execution falls through into
    /// the resident body).
    pub fn input_program(plaintext: &[u8; 16]) -> Vec<u8> {
        let mut p = Program::new();
        for (e, &b) in plaintext.iter().enumerate() {
            wimm(&mut p, P_STATE, SV_STATE, e as u8, b.into());
        }
        darth_isa::encode::encode_program(&p)
    }

    /// Golden ciphertext for an arbitrary per-request plaintext under
    /// this job's key (shape-matched to the job's readbacks).
    pub fn golden_for(&self, plaintext: &[u8; 16]) -> Vec<ExecOutput> {
        let ct = self.golden.encrypt_block(plaintext);
        vec![ExecOutput {
            label: "ciphertext".into(),
            cells: ct.iter().map(|&b| i64::from(b)).collect(),
        }]
    }

    /// Stages the S-box, round keys, masks and gather-address constants.
    fn emit_constants(&self, p: &mut Program) {
        // S-box: 256 entries across four table registers; entry `b` sits
        // at address `b`, so a state byte is its own lookup address.
        for (i, &s) in SBOX.iter().enumerate() {
            wimm(
                p,
                P_TABLE,
                TV_SBOX0 + (i as u8 / 64),
                (i % 64) as u8,
                s.into(),
            );
        }
        // Round keys, one register each.
        for (r, rk) in self.golden.round_keys().iter().enumerate() {
            for (e, &b) in rk.iter().enumerate() {
                wimm(p, P_TABLE, TV_RK0 + r as u8, e as u8, b.into());
            }
        }
        // Bit-extraction mask (1 in every state element).
        for e in 0..16 {
            wimm(p, P_STATE, SV_ONES, e, 1);
        }
        // Byte mask over the whole register: keeps the unused tail
        // elements inside the table's address space after packing.
        for e in 0..ELEMENTS as u8 {
            wimm(p, P_STATE, SV_MASK8, e, 0xFF);
        }
        // ShiftRows gather addresses: shifted[r + 4c] reads the staging
        // copy at byte r + 4·((c + r) mod 4).
        for r in 0..4u64 {
            for c in 0..4u64 {
                let dst = (r + 4 * c) as u8;
                let src = r + 4 * ((c + r) % 4);
                wimm(
                    p,
                    P_STATE,
                    SV_SHIFTADDR,
                    dst,
                    u64::from(TV_STAGE) * ELEMENTS + src,
                );
            }
        }
        // Pack gather addresses: state byte `e`, bit `k` reads output bit
        // `8·(e mod 4) + k` of column `e / 4`'s landed parity register.
        for k in 0..8u64 {
            for e in 0..16u64 {
                let address = (u64::from(TV_PAR0) + e / 4) * ELEMENTS + (8 * (e % 4) + k);
                wimm(p, P_STATE, SV_PACKADDR0 + k as u8, e as u8, address);
            }
        }
        // MVM input gather addresses: input bit `j` of column `c` is bit
        // `j mod 8` of state byte `4c + j/8` (the gf2 wordline order).
        for c in 0..4u64 {
            for j in 0..32u64 {
                let address = (u64::from(TV_BIT0) + j % 8) * ELEMENTS + (4 * c + j / 8);
                wimm(p, P_IN, IV_ADDR0 + c as u8, j as u8, address);
            }
        }
        // Parity mask in the landing pipeline (1 across the 32 bitlines).
        for e in 0..32 {
            wimm(p, P_LAND, LV_ONES32, e, 1);
        }
    }

    /// Loads the plaintext into the state register.
    fn emit_plaintext(&self, p: &mut Program) {
        for (e, &b) in self.plaintext.iter().enumerate() {
            wimm(p, P_STATE, SV_STATE, e as u8, b.into());
        }
    }
}

/// `wimm` shorthand.
fn wimm(p: &mut Program, pipe: u16, vr: u8, element: u8, value: u64) {
    p.push(Instruction::WriteImm {
        pipe: PipelineId(pipe),
        vr: Vr(vr),
        element,
        value,
    });
}

/// SubBytes: each state byte is its own S-box gather address.
fn emit_sub_bytes(p: &mut Program) {
    p.push(Instruction::ElementLoad {
        pipe: PipelineId(P_STATE),
        addr: Vr(SV_STATE),
        table_pipe: PipelineId(P_TABLE),
        dst: Vr(SV_STATE),
    });
}

/// ShiftRows: stage the state into the table pipeline, gather it back
/// through the constant permutation addresses.
fn emit_shift_rows(p: &mut Program) {
    p.push(Instruction::CopyAcross {
        src_pipe: PipelineId(P_STATE),
        src: Vr(SV_STATE),
        dst_pipe: PipelineId(P_TABLE),
        dst: Vr(TV_STAGE),
    });
    p.push(Instruction::ElementLoad {
        pipe: PipelineId(P_STATE),
        addr: Vr(SV_SHIFTADDR),
        table_pipe: PipelineId(P_TABLE),
        dst: Vr(SV_STATE),
    });
}

/// AddRoundKey: copy the resident key across, XOR into the state.
fn emit_add_round_key(p: &mut Program, round: usize) {
    p.push(Instruction::CopyAcross {
        src_pipe: PipelineId(P_TABLE),
        src: Vr(TV_RK0 + round as u8),
        dst_pipe: PipelineId(P_STATE),
        dst: Vr(SV_KEYTMP),
    });
    p.push(Instruction::Bool {
        op: IsaBoolOp::Xor,
        pipe: PipelineId(P_STATE),
        dst: Vr(SV_STATE),
        a: Vr(SV_STATE),
        b: Vr(SV_KEYTMP),
    });
}

/// MixColumns, entirely in instructions: unpack the state into bit
/// planes, gather each column's 32 wordline bits, run the analog MVM,
/// mask the bitline counts down to parities, and gather/OR the output
/// bit planes back into state bytes.
fn emit_mix_columns(p: &mut Program) {
    // Bit planes: b_k[e] = bit k of state byte e, staged to the table.
    for k in 0..8u8 {
        p.push(Instruction::ShiftRight {
            pipe: PipelineId(P_STATE),
            dst: Vr(SV_BIT0 + k),
            src: Vr(SV_STATE),
            amount: k,
        });
        p.push(Instruction::Bool {
            op: IsaBoolOp::And,
            pipe: PipelineId(P_STATE),
            dst: Vr(SV_BIT0 + k),
            a: Vr(SV_BIT0 + k),
            b: Vr(SV_ONES),
        });
        p.push(Instruction::CopyAcross {
            src_pipe: PipelineId(P_STATE),
            src: Vr(SV_BIT0 + k),
            dst_pipe: PipelineId(P_TABLE),
            dst: Vr(TV_BIT0 + k),
        });
    }
    // Per column: gather the 32 input bits, MVM, parity, stage parities.
    for c in 0..4u8 {
        p.push(Instruction::ElementLoad {
            pipe: PipelineId(P_IN),
            addr: Vr(IV_ADDR0 + c),
            table_pipe: PipelineId(P_TABLE),
            dst: Vr(IV_BITS),
        });
        p.push(Instruction::Mvm {
            vacore: VaCoreId(0),
            input_pipe: PipelineId(P_IN),
            input_vr: Vr(IV_BITS),
            dst_pipe: PipelineId(P_LAND),
            dst_vr: Vr(4 * c),
            early_levels: 0,
        });
        p.push(Instruction::Bool {
            op: IsaBoolOp::And,
            pipe: PipelineId(P_LAND),
            dst: Vr(4 * c + 3),
            a: Vr(4 * c),
            b: Vr(LV_ONES32),
        });
        p.push(Instruction::CopyAcross {
            src_pipe: PipelineId(P_LAND),
            src: Vr(4 * c + 3),
            dst_pipe: PipelineId(P_TABLE),
            dst: Vr(TV_PAR0 + c),
        });
    }
    // Repack: gather output bit plane k, shift it to position, OR it in.
    for k in 0..8u8 {
        p.push(Instruction::ElementLoad {
            pipe: PipelineId(P_STATE),
            addr: Vr(SV_PACKADDR0 + k),
            table_pipe: PipelineId(P_TABLE),
            dst: Vr(SV_PB0 + k),
        });
    }
    p.push(Instruction::CopyVr {
        pipe: PipelineId(P_STATE),
        dst: Vr(SV_PACKACC),
        src: Vr(SV_PB0),
    });
    for k in 1..8u8 {
        p.push(Instruction::ShiftLeft {
            pipe: PipelineId(P_STATE),
            dst: Vr(SV_PACKTMP),
            src: Vr(SV_PB0 + k),
            amount: k,
        });
        p.push(Instruction::Bool {
            op: IsaBoolOp::Or,
            pipe: PipelineId(P_STATE),
            dst: Vr(SV_PACKACC),
            a: Vr(SV_PACKACC),
            b: Vr(SV_PACKTMP),
        });
    }
    // Mask the whole register to bytes so every element (including the
    // unused tail) stays a valid S-box gather address next round.
    p.push(Instruction::Bool {
        op: IsaBoolOp::And,
        pipe: PipelineId(P_STATE),
        dst: Vr(SV_STATE),
        a: Vr(SV_PACKACC),
        b: Vr(SV_MASK8),
    });
}

impl Executable for AesExec {
    fn exec_name(&self) -> String {
        self.name.clone()
    }

    fn job(&self) -> darth_pum::Result<ExecJob> {
        let (program, data) = self.compile()?;
        Ok(ExecJob {
            name: self.name.clone(),
            tile: AesExec::tile_config(),
            program: darth_isa::encode::encode_program(&program),
            data,
            readbacks: vec![Readback {
                label: "ciphertext".into(),
                pipe: P_STATE,
                vr: SV_STATE,
                elements: 16,
                signed: false,
            }],
        })
    }

    fn golden(&self) -> darth_pum::Result<Vec<ExecOutput>> {
        let ct = self.golden.encrypt_block(&self.plaintext);
        Ok(vec![ExecOutput {
            label: "ciphertext".into(),
            cells: ct.iter().map(|&b| i64::from(b)).collect(),
        }])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darth_pum::chip::DarthPumChip;
    use darth_pum::params::ChipParams;

    /// Executes a compiled job on a fresh chip and reads the ciphertext.
    fn run(exec: &AesExec) -> [u8; 16] {
        let job = exec.job().expect("compiles");
        let program = job.decoded_program().expect("decodes");
        let mut chip = DarthPumChip::new(ChipParams::default(), job.tile.clone()).expect("builds");
        chip.execute(&program, &job.data).expect("executes");
        let pipe = chip
            .tile_mut()
            .pipeline_mut(P_STATE as usize)
            .expect("exists");
        core::array::from_fn(|i| pipe.read_value(SV_STATE as usize, i).expect("reads") as u8)
    }

    #[test]
    fn appendix_b_vector_matches() {
        let exec = AesExec::fips197_appendix_b();
        assert_eq!(
            run(&exec),
            [
                0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
                0x0b, 0x32
            ]
        );
    }

    #[test]
    fn appendix_c_all_key_sizes_match_golden() {
        for size in [KeySize::Aes128, KeySize::Aes192, KeySize::Aes256] {
            let exec = AesExec::fips197_appendix_c(size);
            let golden = exec.golden().expect("golden");
            let got = run(&exec);
            let cells: Vec<i64> = got.iter().map(|&b| i64::from(b)).collect();
            assert_eq!(cells, golden[0].cells, "{:?}", size);
        }
    }

    #[test]
    fn arbitrary_key_and_block_match_golden() {
        let key = *b"isa-compiled-key";
        let block: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(73).wrapping_add(9));
        let exec = AesExec::aes128("aes-128/custom", &key, block);
        assert_eq!(run(&exec), Aes::new_128(&key).encrypt_block(&block));
    }

    #[test]
    fn program_is_fully_self_contained() {
        // No instruction needs host data beyond the one staged matrix.
        let exec = AesExec::fips197_appendix_b();
        let (program, data) = exec.compile().expect("compiles");
        assert_eq!(data.matrices.len(), 1);
        assert!(data.vectors.is_empty());
        assert!(matches!(
            program.instructions.last(),
            Some(Instruction::Halt)
        ));
        // 128-bit job: setup + 10 rounds land in the ~1.5k range.
        assert!(program.len() > 1000, "len {}", program.len());
    }

    #[test]
    fn split_concatenation_is_exactly_the_monolithic_program() {
        for size in [KeySize::Aes128, KeySize::Aes192, KeySize::Aes256] {
            let exec = AesExec::fips197_appendix_c(size);
            let job = exec.job().expect("compiles");
            let split = exec.split_job().expect("splits");
            let full = split.full_job(&AesExec::input_program(&exec.plaintext));
            assert_eq!(full.program, job.program, "{size:?}");
            assert_eq!(full.tile, job.tile, "{size:?}");
            assert_eq!(full.data, job.data, "{size:?}");
            assert_eq!(full.readbacks, job.readbacks, "{size:?}");
            // Sections keep the serving invariants: halt-free setup and
            // input, body ends with halt.
            let no_halt = |bytes: &[u8]| {
                darth_isa::encode::decode_program(bytes)
                    .expect("decodes")
                    .iter()
                    .all(|inst| !matches!(inst, Instruction::Halt))
            };
            assert!(no_halt(&split.setup), "{size:?}");
            assert!(
                no_halt(&AesExec::input_program(&exec.plaintext)),
                "{size:?}"
            );
            let body = darth_isa::encode::decode_program(&split.body).expect("decodes");
            assert!(matches!(body.instructions.last(), Some(Instruction::Halt)));
        }
    }

    #[test]
    fn key_sizes_scale_the_program() {
        let p128 = AesExec::fips197_appendix_c(KeySize::Aes128)
            .compile()
            .expect("compiles")
            .0
            .len();
        let p256 = AesExec::fips197_appendix_c(KeySize::Aes256)
            .compile()
            .expect("compiles")
            .0
            .len();
        assert!(p256 > p128);
    }
}
