//! The AES workload stream (block encryptions as op events).
//!
//! Kernel names match Figure 14's breakdown categories: `DataMovement`,
//! `SubBytes`, `ShiftRows`, `MixColumns`, `AddRoundKey`. The per-round op
//! counts follow the §5.3 mapping: 16 S-box gathers, a staged 16-element
//! permutation gather, four 32×32 binary MVMs, and one 16-lane XOR.
//!
//! Two emitters live here:
//!
//! * [`emit_block`] streams *one* block encryption — the paper's
//!   evaluation point, collected into the legacy [`Trace`] by
//!   [`block_trace`];
//! * [`BulkAesWorkload`] streams an arbitrary number of blocks with
//!   run-length op batches ([`TraceSink::op_run`]), so a million-block
//!   scenario emits a few dozen events and prices in O(1) memory —
//!   materializing the same stream costs gigabytes (that contrast is the
//!   `make eval-large` demonstration).

use darth_pum::eval::Workload;
use darth_pum::trace::{KernelOp, Trace, TraceMeta, TraceSink, VectorKind};

/// Rounds for each AES variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AesVariant {
    /// AES-128 (10 rounds).
    Aes128,
    /// AES-192 (12 rounds).
    Aes192,
    /// AES-256 (14 rounds).
    Aes256,
}

impl AesVariant {
    /// Number of rounds.
    pub fn rounds(self) -> u64 {
        match self {
            AesVariant::Aes128 => 10,
            AesVariant::Aes192 => 12,
            AesVariant::Aes256 => 14,
        }
    }

    /// The registry slug (`"aes-128"`, …).
    pub fn slug(self) -> &'static str {
        match self {
            AesVariant::Aes128 => "aes-128",
            AesVariant::Aes192 => "aes-192",
            AesVariant::Aes256 => "aes-256",
        }
    }
}

/// One S-box gather: 16 byte lookups through the 256-entry table.
const SUB_BYTES_LOOKUP: KernelOp = KernelOp::TableLookup {
    elements: 16,
    table_size: 256,
    bits: 8,
};

/// The staged ShiftRows permutation gather.
const SHIFT_ROWS_LOOKUP: KernelOp = KernelOp::TableLookup {
    elements: 16,
    table_size: 64,
    bits: 8,
};

/// A 16-byte state copy between pipeline registers.
const STATE_COPY: KernelOp = KernelOp::Vector {
    kind: VectorKind::Copy,
    elements: 16,
    bits: 8,
    count: 1,
};

/// The 16-lane round-key XOR.
const ROUND_KEY_XOR: KernelOp = KernelOp::Vector {
    kind: VectorKind::Bool,
    elements: 16,
    bits: 8,
    count: 1,
};

/// Four column transforms through the 32×32 binary matrix; the 1-bit
/// inputs need no input slicing.
const MIX_COLUMNS_MVM: KernelOp = KernelOp::Mvm {
    rows: 32,
    cols: 32,
    input_bits: 1,
    weight_bits: 1,
    batch: 4,
};

/// Bit unpack/pack around the crossbar.
const MIX_COLUMNS_PACK: KernelOp = KernelOp::Vector {
    kind: VectorKind::Shift,
    elements: 16,
    bits: 8,
    count: 16,
};

/// Streams one block encryption into `sink` (metadata plus the five
/// Figure 14 kernels, ops in the §5.3 per-round order).
///
/// Kernels aggregate over all rounds so Figure 14's percentages read
/// directly from the per-kernel breakdown.
pub fn emit_block(variant: AesVariant, sink: &mut dyn TraceSink) {
    sink.begin_trace(
        // One block occupies the state/table/landing pipeline trio.
        &TraceMeta::new(variant.slug()).with_pipelines_per_item(3),
    );
    emit_block_kernels(variant, sink);
}

/// Streams the five kernels of one block encryption (no
/// [`TraceSink::begin_trace`]), so callers can compose multi-block work
/// items.
pub fn emit_block_kernels(variant: AesVariant, sink: &mut dyn TraceSink) {
    let rounds = variant.rounds();
    sink.begin_kernel("DataMovement");
    sink.op(&KernelOp::HostMove { bytes: 32 });
    // Every round runs SubBytes/ShiftRows/AddRoundKey; MixColumns skips
    // the final round; AddRoundKey adds the initial whitening.
    sink.begin_kernel("SubBytes");
    sink.op_run(&SUB_BYTES_LOOKUP, rounds);
    sink.begin_kernel("ShiftRows");
    for _ in 0..rounds {
        sink.op(&STATE_COPY);
        sink.op(&SHIFT_ROWS_LOOKUP);
    }
    sink.begin_kernel("MixColumns");
    for _ in 1..rounds {
        sink.op(&MIX_COLUMNS_MVM);
        sink.op(&MIX_COLUMNS_PACK);
    }
    sink.begin_kernel("AddRoundKey");
    for _ in 0..=rounds {
        sink.op(&STATE_COPY);
        sink.op(&ROUND_KEY_XOR);
    }
}

/// Builds the materialized trace for one block encryption by collecting
/// [`emit_block`].
pub fn block_trace(variant: AesVariant) -> Trace {
    let mut collector = darth_pum::trace::TraceCollector::new();
    emit_block(variant, &mut collector);
    collector.finish()
}

/// The AES scenario as a pluggable [`Workload`]: one block encryption of
/// the chosen key-size variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AesWorkload {
    /// Key-size variant (round count).
    pub variant: AesVariant,
}

impl AesWorkload {
    /// The paper's evaluation scenario (AES-128).
    pub fn paper() -> Self {
        AesWorkload {
            variant: AesVariant::Aes128,
        }
    }

    /// All three key-size variants, smallest first.
    pub fn sweep() -> Vec<AesWorkload> {
        [AesVariant::Aes128, AesVariant::Aes192, AesVariant::Aes256]
            .into_iter()
            .map(|variant| AesWorkload { variant })
            .collect()
    }
}

impl Workload for AesWorkload {
    fn name(&self) -> String {
        self.variant.slug().into()
    }

    fn label(&self) -> String {
        match self.variant {
            AesVariant::Aes128 => "AES".into(),
            AesVariant::Aes192 => "AES-192".into(),
            AesVariant::Aes256 => "AES-256".into(),
        }
    }

    fn params(&self) -> Vec<(String, String)> {
        vec![("rounds".into(), self.variant.rounds().to_string())]
    }

    fn emit(&self, sink: &mut dyn TraceSink) {
        emit_block(self.variant, sink);
    }
}

/// A bulk-encryption scenario: `blocks` independent block encryptions
/// streamed as one work item — the PrIM-style large memory-bound regime
/// the materialized pipeline could never reach.
///
/// Ops are grouped per kernel into run-length batches (all S-box gathers
/// of all blocks in one [`TraceSink::op_run`], and so on), so the
/// emission is O(1) events regardless of `blocks` and run-length sinks
/// (accumulators, the engine's summary recorder) stay O(1) memory. The
/// blocks are modelled as a dependent stream through one pipeline trio;
/// chip-level parallelism across streams comes from `parallel_items` as
/// usual.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BulkAesWorkload {
    /// Key-size variant (round count).
    pub variant: AesVariant,
    /// Independent blocks encrypted by one work item.
    pub blocks: u64,
}

impl BulkAesWorkload {
    /// The `make eval-large` headline scenario: 2²⁰ (≈1M) AES-128 blocks,
    /// a 16 MiB plaintext.
    pub fn million_blocks() -> Self {
        BulkAesWorkload {
            variant: AesVariant::Aes128,
            blocks: 1 << 20,
        }
    }
}

impl Workload for BulkAesWorkload {
    fn name(&self) -> String {
        format!("{}-bulk{}", self.variant.slug(), self.blocks)
    }

    fn label(&self) -> String {
        format!("AES×{}", self.blocks)
    }

    fn params(&self) -> Vec<(String, String)> {
        vec![
            ("rounds".into(), self.variant.rounds().to_string()),
            ("blocks".into(), self.blocks.to_string()),
        ]
    }

    fn emit(&self, sink: &mut dyn TraceSink) {
        let rounds = self.variant.rounds();
        let blocks = self.blocks.max(1);
        sink.begin_trace(&TraceMeta::new(self.name()).with_pipelines_per_item(3));
        sink.begin_kernel("DataMovement");
        sink.op_run(&KernelOp::HostMove { bytes: 32 }, blocks);
        sink.begin_kernel("SubBytes");
        sink.op_run(&SUB_BYTES_LOOKUP, rounds.saturating_mul(blocks));
        sink.begin_kernel("ShiftRows");
        sink.op_run(&STATE_COPY, rounds.saturating_mul(blocks));
        sink.op_run(&SHIFT_ROWS_LOOKUP, rounds.saturating_mul(blocks));
        sink.begin_kernel("MixColumns");
        sink.op_run(&MIX_COLUMNS_MVM, (rounds - 1).saturating_mul(blocks));
        sink.op_run(&MIX_COLUMNS_PACK, (rounds - 1).saturating_mul(blocks));
        sink.begin_kernel("AddRoundKey");
        sink.op_run(&STATE_COPY, (rounds + 1).saturating_mul(blocks));
        sink.op_run(&ROUND_KEY_XOR, (rounds + 1).saturating_mul(blocks));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darth_pum::trace::SummaryRecorder;

    #[test]
    fn aes_workload_names_follow_variant() {
        assert_eq!(AesWorkload::paper().name(), "aes-128");
        assert_eq!(AesWorkload::paper().label(), "AES");
        let names: Vec<String> = AesWorkload::sweep().iter().map(Workload::name).collect();
        assert_eq!(names, ["aes-128", "aes-192", "aes-256"]);
        for w in AesWorkload::sweep() {
            assert_eq!(w.build_trace().name, w.name());
        }
    }

    #[test]
    fn trace_has_figure14_kernels() {
        let t = block_trace(AesVariant::Aes128);
        for name in [
            "DataMovement",
            "SubBytes",
            "ShiftRows",
            "MixColumns",
            "AddRoundKey",
        ] {
            assert!(t.kernel(name).is_some(), "missing kernel {name}");
        }
    }

    #[test]
    fn round_scaling() {
        let aes128 = block_trace(AesVariant::Aes128);
        let aes256 = block_trace(AesVariant::Aes256);
        assert!(aes256.macs() > aes128.macs());
        // MixColumns runs rounds-1 times with 4 column MVMs each.
        assert_eq!(
            aes128.kernel("MixColumns").map(|k| k.macs()),
            Some(9 * 4 * 32 * 32)
        );
    }

    #[test]
    fn per_round_op_structure_is_preserved() {
        // The emitter must reproduce the legacy builder's exact op
        // sequence (the figure-pricing byte-identity depends on it).
        let t = block_trace(AesVariant::Aes128);
        let shift_rows = t.kernel("ShiftRows").expect("present");
        assert_eq!(shift_rows.ops.len(), 20);
        assert_eq!(shift_rows.ops[0], STATE_COPY);
        assert_eq!(shift_rows.ops[1], SHIFT_ROWS_LOOKUP);
        let sub_bytes = t.kernel("SubBytes").expect("present");
        assert_eq!(sub_bytes.ops, vec![SUB_BYTES_LOOKUP; 10]);
        let ark = t.kernel("AddRoundKey").expect("present");
        assert_eq!(ark.ops.len(), 22, "initial whitening + 10 rounds + final");
    }

    #[test]
    fn aes_is_not_mvm_dominated_by_op_count() {
        // §3's central observation: three of four steps are non-MVM.
        // (Raw MAC counts still dominate because the 32x32 binary matrix
        // is dense; the *time* split is what Figure 14 shows.)
        let t = block_trace(AesVariant::Aes128);
        assert!(t.element_ops() > 0);
        assert!(t.mvm_fraction() < 0.95);
    }

    #[test]
    fn pipelines_per_item_reflects_mapping() {
        assert_eq!(block_trace(AesVariant::Aes128).pipelines_per_item, 3);
    }

    #[test]
    fn bulk_emission_is_compact_and_scales_counts() {
        let bulk = BulkAesWorkload {
            variant: AesVariant::Aes128,
            blocks: 1 << 20,
        };
        assert_eq!(bulk.name(), "aes-128-bulk1048576");
        let mut recorder = SummaryRecorder::new();
        bulk.emit(&mut recorder);
        let summary = recorder.finish();
        // O(1) summary for a million blocks: 5 kernels, ≤ 2 runs each.
        assert_eq!(summary.kernels.len(), 5);
        assert!(summary.kernels.iter().all(|k| k.runs.len() <= 2));
        // Totals scale with the block count.
        let one = BulkAesWorkload { blocks: 1, ..bulk };
        let mut one_rec = SummaryRecorder::new();
        one.emit(&mut one_rec);
        let one_summary = one_rec.finish();
        assert_eq!(summary.macs(), one_summary.macs() * (1 << 20));
        assert_eq!(summary.op_count(), one_summary.op_count() * (1 << 20));
        // A million blocks would cost gigabytes to materialize.
        assert!(summary.materialized_bytes_estimate() > 2_000_000_000);
    }

    #[test]
    fn bulk_single_block_matches_per_block_op_totals() {
        // Grouped emission reorders within kernels but must conserve the
        // per-kernel op counts of the per-round emitter.
        let bulk = BulkAesWorkload {
            variant: AesVariant::Aes256,
            blocks: 1,
        };
        let bulk_trace = bulk.build_trace();
        let single = block_trace(AesVariant::Aes256);
        for kernel in &single.kernels {
            let bulk_kernel = bulk_trace.kernel(&kernel.name).expect("same kernels");
            assert_eq!(bulk_kernel.ops.len(), kernel.ops.len(), "{}", kernel.name);
            assert_eq!(bulk_kernel.macs(), kernel.macs());
            assert_eq!(bulk_kernel.element_ops(), kernel.element_ops());
        }
    }
}
