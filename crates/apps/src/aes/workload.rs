//! The AES workload trace (one 16-byte block encryption).
//!
//! Kernel names match Figure 14's breakdown categories: `DataMovement`,
//! `SubBytes`, `ShiftRows`, `MixColumns`, `AddRoundKey`. The per-round op
//! counts follow the §5.3 mapping: 16 S-box gathers, a staged 16-element
//! permutation gather, four 32×32 binary MVMs, and one 16-lane XOR.

use darth_pum::eval::Workload;
use darth_pum::trace::{Kernel, KernelOp, Trace, VectorKind};

/// Rounds for each AES variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AesVariant {
    /// AES-128 (10 rounds).
    Aes128,
    /// AES-192 (12 rounds).
    Aes192,
    /// AES-256 (14 rounds).
    Aes256,
}

impl AesVariant {
    /// Number of rounds.
    pub fn rounds(self) -> u64 {
        match self {
            AesVariant::Aes128 => 10,
            AesVariant::Aes192 => 12,
            AesVariant::Aes256 => 14,
        }
    }
}

fn sub_bytes_ops() -> Vec<KernelOp> {
    vec![KernelOp::TableLookup {
        elements: 16,
        table_size: 256,
        bits: 8,
    }]
}

fn shift_rows_ops() -> Vec<KernelOp> {
    vec![
        KernelOp::Vector {
            kind: VectorKind::Copy,
            elements: 16,
            bits: 8,
            count: 1,
        },
        KernelOp::TableLookup {
            elements: 16,
            table_size: 64,
            bits: 8,
        },
    ]
}

fn mix_columns_ops() -> Vec<KernelOp> {
    vec![
        // Four column transforms through the 32x32 binary matrix; the
        // 1-bit inputs need no input slicing.
        KernelOp::Mvm {
            rows: 32,
            cols: 32,
            input_bits: 1,
            weight_bits: 1,
            batch: 4,
        },
        // Bit unpack/pack around the crossbar.
        KernelOp::Vector {
            kind: VectorKind::Shift,
            elements: 16,
            bits: 8,
            count: 16,
        },
    ]
}

fn add_round_key_ops() -> Vec<KernelOp> {
    vec![
        KernelOp::Vector {
            kind: VectorKind::Copy,
            elements: 16,
            bits: 8,
            count: 1,
        },
        KernelOp::Vector {
            kind: VectorKind::Bool,
            elements: 16,
            bits: 8,
            count: 1,
        },
    ]
}

/// Builds the trace for one block encryption.
///
/// Kernels aggregate over all rounds so Figure 14's percentages read
/// directly from the per-kernel breakdown.
pub fn block_trace(variant: AesVariant) -> Trace {
    let rounds = variant.rounds();
    let mut sub_bytes = Vec::new();
    let mut shift_rows = Vec::new();
    let mut mix_columns = Vec::new();
    let mut add_round_key = add_round_key_ops(); // initial whitening
    for _ in 1..rounds {
        sub_bytes.extend(sub_bytes_ops());
        shift_rows.extend(shift_rows_ops());
        mix_columns.extend(mix_columns_ops());
        add_round_key.extend(add_round_key_ops());
    }
    // Final round: no MixColumns.
    sub_bytes.extend(sub_bytes_ops());
    shift_rows.extend(shift_rows_ops());
    add_round_key.extend(add_round_key_ops());

    let name = match variant {
        AesVariant::Aes128 => "aes-128",
        AesVariant::Aes192 => "aes-192",
        AesVariant::Aes256 => "aes-256",
    };
    Trace::new(
        name,
        vec![
            Kernel::new("DataMovement", vec![KernelOp::HostMove { bytes: 32 }]),
            Kernel::new("SubBytes", sub_bytes),
            Kernel::new("ShiftRows", shift_rows),
            Kernel::new("MixColumns", mix_columns),
            Kernel::new("AddRoundKey", add_round_key),
        ],
    )
    // One block occupies the state/table/landing pipeline trio.
    .with_pipelines_per_item(3)
}

/// The AES scenario as a pluggable [`Workload`]: one block encryption of
/// the chosen key-size variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AesWorkload {
    /// Key-size variant (round count).
    pub variant: AesVariant,
}

impl AesWorkload {
    /// The paper's evaluation scenario (AES-128).
    pub fn paper() -> Self {
        AesWorkload {
            variant: AesVariant::Aes128,
        }
    }

    /// All three key-size variants, smallest first.
    pub fn sweep() -> Vec<AesWorkload> {
        [AesVariant::Aes128, AesVariant::Aes192, AesVariant::Aes256]
            .into_iter()
            .map(|variant| AesWorkload { variant })
            .collect()
    }
}

impl Workload for AesWorkload {
    fn name(&self) -> String {
        match self.variant {
            AesVariant::Aes128 => "aes-128",
            AesVariant::Aes192 => "aes-192",
            AesVariant::Aes256 => "aes-256",
        }
        .into()
    }

    fn label(&self) -> String {
        match self.variant {
            AesVariant::Aes128 => "AES".into(),
            AesVariant::Aes192 => "AES-192".into(),
            AesVariant::Aes256 => "AES-256".into(),
        }
    }

    fn params(&self) -> Vec<(String, String)> {
        vec![("rounds".into(), self.variant.rounds().to_string())]
    }

    fn build_trace(&self) -> Trace {
        block_trace(self.variant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aes_workload_names_follow_variant() {
        assert_eq!(AesWorkload::paper().name(), "aes-128");
        assert_eq!(AesWorkload::paper().label(), "AES");
        let names: Vec<String> = AesWorkload::sweep().iter().map(Workload::name).collect();
        assert_eq!(names, ["aes-128", "aes-192", "aes-256"]);
        for w in AesWorkload::sweep() {
            assert_eq!(w.build_trace().name, w.name());
        }
    }

    #[test]
    fn trace_has_figure14_kernels() {
        let t = block_trace(AesVariant::Aes128);
        for name in [
            "DataMovement",
            "SubBytes",
            "ShiftRows",
            "MixColumns",
            "AddRoundKey",
        ] {
            assert!(t.kernel(name).is_some(), "missing kernel {name}");
        }
    }

    #[test]
    fn round_scaling() {
        let aes128 = block_trace(AesVariant::Aes128);
        let aes256 = block_trace(AesVariant::Aes256);
        assert!(aes256.macs() > aes128.macs());
        // MixColumns runs rounds-1 times with 4 column MVMs each.
        assert_eq!(
            aes128.kernel("MixColumns").map(|k| k.macs()),
            Some(9 * 4 * 32 * 32)
        );
    }

    #[test]
    fn aes_is_not_mvm_dominated_by_op_count() {
        // §3's central observation: three of four steps are non-MVM.
        // (Raw MAC counts still dominate because the 32x32 binary matrix
        // is dense; the *time* split is what Figure 14 shows.)
        let t = block_trace(AesVariant::Aes128);
        assert!(t.element_ops() > 0);
        assert!(t.mvm_fraction() < 0.95);
    }

    #[test]
    fn pipelines_per_item_reflects_mapping() {
        assert_eq!(block_trace(AesVariant::Aes128).pipelines_per_item, 3);
    }
}
