//! AES on DARTH-PUM (§5.3, Figure 12).
//!
//! Placement:
//!
//! * **State** — 16 byte-elements of a vector register in the *state
//!   pipeline*.
//! * **SubBytes** — the S-box lives in a spare pipeline (4 vector
//!   registers × 64 elements = 256 entries); each state byte is its own
//!   lookup address for the element-wise load instruction (§4.2).
//! * **ShiftRows** — a byte permutation, realised by staging the state
//!   into the table pipeline and gathering it back through a constant
//!   address register (the same element-wise load datapath; the paper's
//!   pipeline-reversal variant is timing-equivalent and is modelled in the
//!   unoptimized schedule).
//! * **MixColumns** — the GF(2)-linear 32×32 binary matrix
//!   ([`crate::aes::gf2::mixcolumns_matrix`]) sits in one SLC analog
//!   array, remapped to ±1 by the §4.3 compensation scheme. Each column's
//!   32 bits drive the wordlines; each bitline's count decodes to its
//!   parity — the one bit the subsequent XOR structure needs, which is
//!   what lets a ramp ADC terminate after 4 levels (§7.3).
//! * **AddRoundKey** — round keys are resident in the table pipeline and
//!   XORed into the state with one Boolean macro.
//!
//! Every step executes *functionally* on the simulated tile: the
//! ciphertext is produced by OSCAR NOR pulses and analog bitline currents,
//! then checked against FIPS-197.

use super::gf2;
use super::golden::{self, Aes};
use crate::{Error, Result};
use darth_analog::compensation::CompensationScheme;
use darth_digital::logic::LogicFamily;
use darth_digital::macros::MacroOp;
use darth_digital::BoolOp;
use darth_isa::iiu::ReductionRegs;
use darth_isa::VaCoreId;
use darth_pum::hct::{HctConfig, HybridComputeTile};
use darth_reram::Cycles;
use std::collections::BTreeMap;

/// Pipeline roles within the AES tile.
const STATE_PIPE: usize = 0;
const TABLE_PIPE: usize = 1;
const LANDING_PIPE: usize = 2;

/// Table-pipeline register map.
const SBOX_BASE_VR: usize = 0; // v0..v3: the 256-entry S-box
const STAGING_VR: usize = 4; // ShiftRows staging copy of the state
const ROUND_KEY_BASE_VR: usize = 5; // v5..: one VR per round key

/// State-pipeline register map.
const STATE_VR: usize = 0;
const KEY_TMP_VR: usize = 1;
const SHIFT_ADDR_VR: usize = 2;

/// AES-128/192/256 encryption running on a hybrid compute tile.
#[derive(Debug)]
pub struct AesDarth {
    tile: HybridComputeTile,
    vacore: VaCoreId,
    golden: Aes,
    scheme: CompensationScheme,
    kernel_cycles: BTreeMap<String, Cycles>,
    blocks_encrypted: u64,
}

impl AesDarth {
    /// Builds an AES-128 engine with the default functional tile.
    ///
    /// # Errors
    ///
    /// Propagates tile construction and programming errors.
    pub fn new_128(key: &[u8; 16]) -> Result<Self> {
        AesDarth::with_config(Aes::new_128(key), AesDarth::default_config())
    }

    /// Builds an AES-192 engine.
    ///
    /// # Errors
    ///
    /// Propagates tile construction and programming errors.
    pub fn new_192(key: &[u8; 24]) -> Result<Self> {
        AesDarth::with_config(Aes::new_192(key), AesDarth::default_config())
    }

    /// Builds an AES-256 engine.
    ///
    /// # Errors
    ///
    /// Propagates tile construction and programming errors.
    pub fn new_256(key: &[u8; 32]) -> Result<Self> {
        AesDarth::with_config(Aes::new_256(key), AesDarth::default_config())
    }

    /// The tile geometry AES needs: three pipelines (state, table,
    /// landing), 16-bit depth, one SLC analog array.
    pub fn default_config() -> HctConfig {
        HctConfig {
            functional_pipelines: 3,
            functional_depth: 16,
            functional_elements: 64,
            functional_vrs: 24,
            functional_ace_arrays: 2,
            functional_bits_per_cell: 1,
            ..HctConfig::small_test()
        }
    }

    /// Builds an engine from an expanded key on a custom tile (the
    /// noise-injection tests use a noisy configuration here).
    ///
    /// # Errors
    ///
    /// Returns mapping errors when the tile is too small, or substrate
    /// errors.
    pub fn with_config(golden: Aes, config: HctConfig) -> Result<Self> {
        if config.functional_pipelines < 3 {
            return Err(Error::Mapping(
                "AES needs three pipelines (state, table, landing)".into(),
            ));
        }
        let needed_vrs = ROUND_KEY_BASE_VR + golden.round_keys().len() + 1;
        if config.functional_vrs < needed_vrs {
            return Err(Error::Mapping(format!(
                "AES needs {needed_vrs} vector registers in the table pipeline"
            )));
        }
        let mut tile = HybridComputeTile::new(config)?;
        // ±1 remapping plus the digitally applied IR-drop correction
        // (§4.3); range scaling is unnecessary at integer ADC LSBs.
        let scheme = CompensationScheme {
            remap: true,
            scale_half: false,
            ir_drop_alpha: 0.0,
        }
        .with_ir_alpha(tile.ace().config().crossbar.ir_drop_alpha);

        // Program the ±1-remapped MixColumns matrix into one SLC vACore.
        let vacore = tile.alloc_vacore(1, 1, 1, false)?;
        let matrix = scheme.remap_matrix(&gf2::mixcolumns_matrix());
        tile.set_matrix(vacore, &matrix)?;

        // Load the S-box: 256 entries across four vector registers.
        for vr in 0..4 {
            let values: Vec<u64> = (0..64)
                .map(|e| u64::from(golden::SBOX[vr * 64 + e]))
                .collect();
            tile.pipeline_mut(TABLE_PIPE)?
                .write_vector(SBOX_BASE_VR + vr, &values)?;
        }

        // Load the round keys, one register each.
        for (r, rk) in golden.round_keys().iter().enumerate() {
            let values: Vec<u64> = rk.iter().map(|&b| u64::from(b)).collect();
            tile.pipeline_mut(TABLE_PIPE)?
                .write_vector(ROUND_KEY_BASE_VR + r, &values)?;
        }

        // ShiftRows gather addresses: shifted[e] = staged[perm[e]], where
        // the staging copy lives at table address STAGING_VR*64 + perm[e].
        let elements = tile.pipeline(STATE_PIPE)?.elements() as u64;
        let mut addresses = vec![0u64; 16];
        for r in 0..4usize {
            for c in 0..4usize {
                let dst = r + 4 * c;
                let src = r + 4 * ((c + r) % 4);
                addresses[dst] = STAGING_VR as u64 * elements + src as u64;
            }
        }
        tile.pipeline_mut(STATE_PIPE)?
            .write_vector(SHIFT_ADDR_VR, &addresses)?;

        Ok(AesDarth {
            tile,
            vacore,
            golden,
            scheme,
            kernel_cycles: BTreeMap::new(),
            blocks_encrypted: 0,
        })
    }

    /// The golden context (round keys, oracle encryption).
    pub fn golden(&self) -> &Aes {
        &self.golden
    }

    /// Per-kernel cycle totals accumulated so far (Figure 14's breakdown).
    pub fn kernel_cycles(&self) -> &BTreeMap<String, Cycles> {
        &self.kernel_cycles
    }

    /// Blocks encrypted so far.
    pub fn blocks_encrypted(&self) -> u64 {
        self.blocks_encrypted
    }

    /// The underlying tile (energy/stat inspection).
    pub fn tile(&self) -> &HybridComputeTile {
        &self.tile
    }

    fn charge(&mut self, kernel: &str, cycles: Cycles) {
        *self
            .kernel_cycles
            .entry(kernel.to_owned())
            .or_insert(Cycles::ZERO) += cycles;
        self.tile.advance(cycles);
    }

    fn macro_latency(&self, op: MacroOp) -> Cycles {
        let params = &self.tile.config().params;
        op.cost(
            self.tile.config().family,
            params.dce_pipeline_depth as u64,
            params.array_dim as u64,
        )
        .latency()
    }

    /// Encrypts one 16-byte block on the tile.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors; results are validated against the
    /// golden model by the test suite, not silently corrected here.
    pub fn encrypt_block(&mut self, block: &[u8; 16]) -> Result<[u8; 16]> {
        // Load the plaintext into the state register (16 peripheral
        // writes: one row of data per cycle).
        let values: Vec<u64> = block.iter().map(|&b| u64::from(b)).collect();
        self.tile
            .pipeline_mut(STATE_PIPE)?
            .write_vector(STATE_VR, &values)?;
        self.charge("DataMovement", Cycles::new(16));

        let rounds = self.golden.rounds();
        self.add_round_key(0)?;
        for round in 1..rounds {
            self.sub_bytes()?;
            self.shift_rows()?;
            self.mix_columns()?;
            self.add_round_key(round)?;
        }
        self.sub_bytes()?;
        self.shift_rows()?;
        self.add_round_key(rounds)?;

        let mut out = [0u8; 16];
        let pipe = self.tile.pipeline_mut(STATE_PIPE)?;
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = pipe.read_value(STATE_VR, i)? as u8;
        }
        self.charge("DataMovement", Cycles::new(16));
        self.blocks_encrypted += 1;
        Ok(out)
    }

    /// SubBytes: element-wise gather through the S-box pipeline.
    fn sub_bytes(&mut self) -> Result<()> {
        let cost = self.macro_latency(MacroOp::ElementLoad);
        {
            let (state, table) = self.tile.pipeline_pair(STATE_PIPE, TABLE_PIPE)?;
            state.elementwise_load(STATE_VR, table, STATE_VR)?;
        }
        self.charge("SubBytes", cost);
        Ok(())
    }

    /// ShiftRows: stage into the table pipeline, gather back permuted.
    fn shift_rows(&mut self) -> Result<()> {
        let copy = self.macro_latency(MacroOp::CopyAcross);
        let gather = self.macro_latency(MacroOp::ElementLoad);
        {
            let (table, state) = self.tile.pipeline_pair(TABLE_PIPE, STATE_PIPE)?;
            table.copy_from(state, STATE_VR, STAGING_VR)?;
        }
        {
            let (state, table) = self.tile.pipeline_pair(STATE_PIPE, TABLE_PIPE)?;
            state.elementwise_load(SHIFT_ADDR_VR, table, STATE_VR)?;
        }
        self.charge("ShiftRows", copy + gather);
        Ok(())
    }

    /// MixColumns: one analog MVM per state column, parity-decoded.
    fn mix_columns(&mut self) -> Result<()> {
        // Ramp ADCs terminate after 4 levels here (§7.3); SAR ignores it.
        let early = Some(4u16);
        let unpack = self.macro_latency(MacroOp::ShiftBits(1)) * 8;
        let pack = unpack;
        for c in 0..4 {
            // Read the column's bytes out of the DCE (peripheral reads are
            // part of the MVM's input staging, charged via `unpack`).
            let col: [u8; 4] = {
                let pipe = self.tile.pipeline_mut(STATE_PIPE)?;
                [
                    pipe.peek_value(STATE_VR, 4 * c) as u8,
                    pipe.peek_value(STATE_VR, 4 * c + 1) as u8,
                    pipe.peek_value(STATE_VR, 4 * c + 2) as u8,
                    pipe.peek_value(STATE_VR, 4 * c + 3) as u8,
                ]
            };
            let bits = gf2::column_to_bits(&col);
            let active: i64 = bits.iter().sum();
            let regs = ReductionRegs::dense(1);
            let report = self
                .tile
                .exec_mvm(self.vacore, &bits, LANDING_PIPE, &regs, early)?;
            // ±1 remap: measured = 2·count − active; parity = count & 1.
            // The IR-drop correction divides out the (1 − α·k) droop first.
            let out_bits: Vec<i64> = report.result[..32]
                .iter()
                .map(|&m| {
                    let corrected = self.scheme.correct_ir(m as f64, active);
                    self.scheme.decode(corrected, active) & 1
                })
                .collect();
            let out = gf2::bits_to_column(&out_bits);
            {
                let pipe = self.tile.pipeline_mut(STATE_PIPE)?;
                for (i, &b) in out.iter().enumerate() {
                    pipe.write_value(STATE_VR, 4 * c + i, u64::from(b))?;
                }
            }
            self.charge("MixColumns", report.cycles + unpack + pack);
        }
        Ok(())
    }

    /// AddRoundKey: copy the resident key across, XOR into the state.
    fn add_round_key(&mut self, round: usize) -> Result<()> {
        let copy = self.macro_latency(MacroOp::CopyAcross);
        let xor = self.macro_latency(MacroOp::Bool(BoolOp::Xor));
        {
            let (state, table) = self.tile.pipeline_pair(STATE_PIPE, TABLE_PIPE)?;
            state.copy_from(table, ROUND_KEY_BASE_VR + round, KEY_TMP_VR)?;
            state.bool_op(BoolOp::Xor, STATE_VR, STATE_VR, KEY_TMP_VR)?;
        }
        self.charge("AddRoundKey", copy + xor);
        Ok(())
    }
}

/// Convenience: the logic-family-dependent cycle estimate for one AES
/// block on the DCE alone (used by the Figure 7 sweep).
pub fn digital_only_block_cycles(family: LogicFamily) -> u64 {
    // Per round: SubBytes (element loads) + ShiftRows (copy+gather) +
    // MixColumns as ~36 XOR macros over the GF(2) map + AddRoundKey (XOR).
    let depth = 64u64;
    let elements = 64u64;
    let eload = MacroOp::ElementLoad
        .cost(family, depth, elements)
        .latency()
        .get();
    let copy = MacroOp::CopyAcross
        .cost(family, depth, elements)
        .latency()
        .get();
    let xor_cost = MacroOp::Bool(BoolOp::Xor).cost(family, depth, elements);
    // The GF(2) MixColumns XOR network pipelines (bit-aligned deps).
    let xors = xor_cost.pipelined_batch(36).get();
    let per_round = eload + (copy + eload) + xors + (copy + xor_cost.latency().get());
    10 * per_round
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_fips197_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let plaintext = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let mut engine = AesDarth::new_128(&key).expect("builds");
        let ct = engine.encrypt_block(&plaintext).expect("encrypts");
        assert_eq!(
            ct,
            [
                0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
                0x0b, 0x32
            ]
        );
    }

    #[test]
    fn matches_golden_for_many_blocks() {
        let key = *b"hybrid-pum-key!!";
        let mut engine = AesDarth::new_128(&key).expect("builds");
        let golden = Aes::new_128(&key);
        for seed in 0u8..8 {
            let block: [u8; 16] =
                core::array::from_fn(|i| seed.wrapping_mul(37).wrapping_add((i * 3) as u8));
            let hybrid = engine.encrypt_block(&block).expect("encrypts");
            assert_eq!(hybrid, golden.encrypt_block(&block), "block {seed}");
        }
        assert_eq!(engine.blocks_encrypted(), 8);
    }

    #[test]
    fn aes256_matches_golden() {
        let key: [u8; 32] = core::array::from_fn(|i| (i * 7) as u8);
        let mut engine = AesDarth::new_256(&key).expect("builds");
        let golden = Aes::new_256(&key);
        let block: [u8; 16] = core::array::from_fn(|i| (255 - i) as u8);
        assert_eq!(
            engine.encrypt_block(&block).expect("encrypts"),
            golden.encrypt_block(&block)
        );
    }

    #[test]
    fn aes192_matches_golden() {
        let key: [u8; 24] = core::array::from_fn(|i| (i * 11 + 3) as u8);
        let mut engine = AesDarth::new_192(&key).expect("builds");
        let golden = Aes::new_192(&key);
        let block = *b"0123456789abcdef";
        assert_eq!(
            engine.encrypt_block(&block).expect("encrypts"),
            golden.encrypt_block(&block)
        );
    }

    #[test]
    fn kernel_breakdown_covers_all_steps() {
        let mut engine = AesDarth::new_128(&[7u8; 16]).expect("builds");
        engine.encrypt_block(&[1u8; 16]).expect("encrypts");
        let kernels = engine.kernel_cycles();
        for name in [
            "DataMovement",
            "SubBytes",
            "ShiftRows",
            "MixColumns",
            "AddRoundKey",
        ] {
            assert!(
                kernels.get(name).is_some_and(|c| c.get() > 0),
                "kernel {name} missing from breakdown: {kernels:?}"
            );
        }
        // MixColumns runs through the ACE, so analog energy must exist.
        let meter = engine.tile().energy_meter();
        assert!(meter.component("ace.adc").get() > 0.0);
    }

    #[test]
    fn too_small_tile_is_rejected() {
        let mut config = AesDarth::default_config();
        config.functional_pipelines = 2;
        let err = AesDarth::with_config(Aes::new_128(&[0; 16]), config).unwrap_err();
        assert!(matches!(err, Error::Mapping(_)));
    }

    #[test]
    fn digital_only_estimate_orders_families() {
        let oscar = digital_only_block_cycles(LogicFamily::Oscar);
        let ideal = digital_only_block_cycles(LogicFamily::Ideal);
        assert!(ideal < oscar);
        // §3: the ideal family buys roughly 2x for digital-only AES.
        // §3 reports ~2.1x for digital-only AES with an ideal family.
        let ratio = oscar as f64 / ideal as f64;
        assert!((1.5..=3.5).contains(&ratio), "ratio {ratio}");
    }
}
