//! AES encryption (§5.3): golden model, GF(2) linear algebra, DARTH-PUM
//! mapping and workload trace.

pub mod gf2;
pub mod golden;
pub mod mapping;
pub mod program;
pub mod workload;

pub use golden::Aes;
pub use mapping::AesDarth;
pub use program::AesExec;
