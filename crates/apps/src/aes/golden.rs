//! A plain-Rust AES reference (FIPS-197): AES-128/192/256 encrypt and
//! decrypt, plus the standalone round steps the DARTH-PUM mapping reuses
//! (key schedule, S-box, per-step transforms).
//!
//! This is the correctness oracle for the hybrid mapping and the workload
//! descriptor for the CPU baseline. It is a straightforward table-free
//! byte-level implementation (no T-tables) so each of the four round steps
//! stays visible for Figure 14's per-kernel breakdown.

/// The AES S-box.
pub const SBOX: [u8; 256] = build_sbox();
/// The inverse S-box.
pub const INV_SBOX: [u8; 256] = build_inv_sbox();

/// Multiplies two elements of GF(2^8) modulo `x^8 + x^4 + x^3 + x + 1`.
pub const fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1B;
        }
        b >>= 1;
        i += 1;
    }
    p
}

const fn gf_inverse(a: u8) -> u8 {
    // a^254 in GF(2^8) by square-and-multiply (a^-1 = a^(2^8 - 2)).
    if a == 0 {
        return 0;
    }
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 == 1 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

const fn build_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        let inv = gf_inverse(i as u8);
        // affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        let mut b = inv;
        let mut x = inv;
        let mut r = 0;
        while r < 4 {
            x = x.rotate_left(1);
            b ^= x;
            r += 1;
        }
        sbox[i] = b ^ 0x63;
        i += 1;
    }
    sbox
}

const fn build_inv_sbox() -> [u8; 256] {
    let sbox = build_sbox();
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[sbox[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

/// AES key sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeySize {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 192-bit key, 12 rounds.
    Aes192,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl KeySize {
    /// Number of rounds (§5.3).
    pub fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes192 => 12,
            KeySize::Aes256 => 14,
        }
    }

    /// Key length in 32-bit words.
    pub fn nk(self) -> usize {
        match self {
            KeySize::Aes128 => 4,
            KeySize::Aes192 => 6,
            KeySize::Aes256 => 8,
        }
    }
}

/// Expands a key into `rounds + 1` round keys of 16 bytes.
///
/// # Panics
///
/// Panics if `key` does not match `size`'s byte length.
pub fn key_schedule(key: &[u8], size: KeySize) -> Vec<[u8; 16]> {
    let nk = size.nk();
    assert_eq!(key.len(), nk * 4, "key length must match the key size");
    let rounds = size.rounds();
    let nw = 4 * (rounds + 1);
    let mut w = vec![[0u8; 4]; nw];
    for (i, word) in w.iter_mut().take(nk).enumerate() {
        word.copy_from_slice(&key[4 * i..4 * i + 4]);
    }
    let mut rcon = 1u8;
    for i in nk..nw {
        let mut temp = w[i - 1];
        if i % nk == 0 {
            temp.rotate_left(1);
            for b in &mut temp {
                *b = SBOX[*b as usize];
            }
            temp[0] ^= rcon;
            rcon = gf_mul(rcon, 2);
        } else if nk > 6 && i % nk == 4 {
            for b in &mut temp {
                *b = SBOX[*b as usize];
            }
        }
        for j in 0..4 {
            temp[j] ^= w[i - nk][j];
        }
        w[i] = temp;
    }
    (0..=rounds)
        .map(|r| {
            let mut rk = [0u8; 16];
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
            rk
        })
        .collect()
}

/// State bytes are kept in FIPS order: byte `i` of the block is state
/// column `i / 4`, row `i % 4`.
pub type State = [u8; 16];

/// SubBytes: S-box substitution of every byte.
pub fn sub_bytes(state: &mut State) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// Inverse SubBytes.
pub fn inv_sub_bytes(state: &mut State) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

/// ShiftRows: row `r` rotates left by `r` bytes.
pub fn shift_rows(state: &mut State) {
    let old = *state;
    for r in 0..4 {
        for c in 0..4 {
            state[r + 4 * c] = old[r + 4 * ((c + r) % 4)];
        }
    }
}

/// Inverse ShiftRows.
pub fn inv_shift_rows(state: &mut State) {
    let old = *state;
    for r in 0..4 {
        for c in 0..4 {
            state[r + 4 * ((c + r) % 4)] = old[r + 4 * c];
        }
    }
}

/// MixColumns: each column is multiplied by the fixed circulant matrix
/// `{02 03 01 01}`.
pub fn mix_columns(state: &mut State) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

/// Inverse MixColumns (`{0e 0b 0d 09}`).
pub fn inv_mix_columns(state: &mut State) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gf_mul(col[0], 0x0e)
            ^ gf_mul(col[1], 0x0b)
            ^ gf_mul(col[2], 0x0d)
            ^ gf_mul(col[3], 0x09);
        state[4 * c + 1] = gf_mul(col[0], 0x09)
            ^ gf_mul(col[1], 0x0e)
            ^ gf_mul(col[2], 0x0b)
            ^ gf_mul(col[3], 0x0d);
        state[4 * c + 2] = gf_mul(col[0], 0x0d)
            ^ gf_mul(col[1], 0x09)
            ^ gf_mul(col[2], 0x0e)
            ^ gf_mul(col[3], 0x0b);
        state[4 * c + 3] = gf_mul(col[0], 0x0b)
            ^ gf_mul(col[1], 0x0d)
            ^ gf_mul(col[2], 0x09)
            ^ gf_mul(col[3], 0x0e);
    }
}

/// AddRoundKey: XOR with the round key.
pub fn add_round_key(state: &mut State, round_key: &[u8; 16]) {
    for (b, k) in state.iter_mut().zip(round_key) {
        *b ^= k;
    }
}

/// A keyed AES context.
#[derive(Debug, Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
}

impl Aes {
    /// Creates an AES-128 context.
    pub fn new_128(key: &[u8; 16]) -> Self {
        Aes {
            round_keys: key_schedule(key, KeySize::Aes128),
        }
    }

    /// Creates an AES-192 context.
    pub fn new_192(key: &[u8; 24]) -> Self {
        Aes {
            round_keys: key_schedule(key, KeySize::Aes192),
        }
    }

    /// Creates an AES-256 context.
    pub fn new_256(key: &[u8; 32]) -> Self {
        Aes {
            round_keys: key_schedule(key, KeySize::Aes256),
        }
    }

    /// The expanded round keys.
    pub fn round_keys(&self) -> &[[u8; 16]] {
        &self.round_keys
    }

    /// Number of rounds.
    pub fn rounds(&self) -> usize {
        self.round_keys.len() - 1
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state: State = *block;
        add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..self.rounds() {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[self.rounds()]);
        state
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state: State = *block;
        add_round_key(&mut state, &self.round_keys[self.rounds()]);
        inv_shift_rows(&mut state);
        inv_sub_bytes(&mut state);
        for round in (1..self.rounds()).rev() {
            add_round_key(&mut state, &self.round_keys[round]);
            inv_mix_columns(&mut state);
            inv_shift_rows(&mut state);
            inv_sub_bytes(&mut state);
        }
        add_round_key(&mut state, &self.round_keys[0]);
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_spot_checks() {
        // FIPS-197 Figure 7 values.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(INV_SBOX[0x63], 0x00);
        assert_eq!(INV_SBOX[0xed], 0x53);
    }

    #[test]
    fn gf_mul_known_values() {
        // FIPS-197 §4.2: {57} x {83} = {c1}
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        assert_eq!(gf_mul(1, 0xAB), 0xAB);
        assert_eq!(gf_mul(0, 0xAB), 0x00);
    }

    #[test]
    fn fips197_appendix_b_aes128() {
        // FIPS-197 Appendix B worked example.
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let plaintext = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes::new_128(&key);
        assert_eq!(aes.encrypt_block(&plaintext), expected);
        assert_eq!(aes.decrypt_block(&expected), plaintext);
    }

    #[test]
    fn fips197_appendix_c_vectors() {
        // FIPS-197 Appendix C: key 000102...0f, plaintext 00112233...ff.
        let plaintext: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let key128: [u8; 16] = core::array::from_fn(|i| i as u8);
        let expected128 = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(Aes::new_128(&key128).encrypt_block(&plaintext), expected128);

        let key192: [u8; 24] = core::array::from_fn(|i| i as u8);
        let expected192 = [
            0xdd, 0xa9, 0x7c, 0xa4, 0x86, 0x4c, 0xdf, 0xe0, 0x6e, 0xaf, 0x70, 0xa0, 0xec, 0x0d,
            0x71, 0x91,
        ];
        assert_eq!(Aes::new_192(&key192).encrypt_block(&plaintext), expected192);

        let key256: [u8; 32] = core::array::from_fn(|i| i as u8);
        let expected256 = [
            0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
            0x60, 0x89,
        ];
        assert_eq!(Aes::new_256(&key256).encrypt_block(&plaintext), expected256);
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let key = *b"A 16-byte secret";
        let aes = Aes::new_128(&key);
        for seed in 0u8..16 {
            let block: [u8; 16] =
                core::array::from_fn(|i| seed.wrapping_mul(31).wrapping_add(i as u8));
            assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
        }
    }

    #[test]
    fn round_counts() {
        assert_eq!(KeySize::Aes128.rounds(), 10);
        assert_eq!(KeySize::Aes192.rounds(), 12);
        assert_eq!(KeySize::Aes256.rounds(), 14);
        assert_eq!(Aes::new_128(&[0; 16]).rounds(), 10);
        assert_eq!(Aes::new_192(&[0; 24]).rounds(), 12);
        assert_eq!(Aes::new_256(&[0; 32]).rounds(), 14);
    }

    #[test]
    fn key_schedule_first_round_key_is_the_key() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let rks = key_schedule(&key, KeySize::Aes128);
        assert_eq!(rks.len(), 11);
        assert_eq!(rks[0], key);
    }

    #[test]
    fn step_inverses() {
        let mut state: State = core::array::from_fn(|i| (i as u8).wrapping_mul(17));
        let original = state;
        sub_bytes(&mut state);
        inv_sub_bytes(&mut state);
        assert_eq!(state, original);
        shift_rows(&mut state);
        inv_shift_rows(&mut state);
        assert_eq!(state, original);
        mix_columns(&mut state);
        inv_mix_columns(&mut state);
        assert_eq!(state, original);
    }

    #[test]
    fn shift_rows_moves_expected_bytes() {
        // state bytes 0..16 column-major; row 1 rotates by 1 column.
        let mut state: State = core::array::from_fn(|i| i as u8);
        shift_rows(&mut state);
        assert_eq!(state[0], 0); // row 0 unmoved
        assert_eq!(state[1], 5); // row 1: col 0 takes col 1's byte
        assert_eq!(state[2], 10); // row 2 shifts by 2
        assert_eq!(state[3], 15); // row 3 shifts by 3
    }
}
