//! GF(2) linearization of MixColumns.
//!
//! Over GF(2), MixColumns is a linear map on the 32 bits of one state
//! column: every output bit is the XOR (parity) of a fixed subset of input
//! bits. That is exactly what DARTH-PUM exploits (§5.3): the 32×32 binary
//! matrix is stored in 1-bit cells, the column's bits drive the wordlines,
//! each bitline integrates the *count* of matching ones, and only the
//! count's least-significant bit — the parity — matters thanks to the
//! subsequent XOR structure. The ADC can therefore terminate after a few
//! levels (§7.3's 256→4-cycle ramp trick).

use super::golden::gf_mul;

/// Builds the 32×32 GF(2) matrix `T` with `out = T · in (mod 2)` for one
/// MixColumns column. Input bit index is `8·byte + bit` (byte 0 is the
/// column's first byte, bit 0 its LSB); `matrix[r][c] = 1` when input bit
/// `r` feeds output bit `c` — i.e. rows are wordlines and columns are
/// bitlines, matching the crossbar orientation.
pub fn mixcolumns_matrix() -> Vec<Vec<i64>> {
    let mut matrix = vec![vec![0i64; 32]; 32];
    // Probe the linear map with basis vectors: set one input bit, record
    // which output bits light up.
    for in_byte in 0..4 {
        for in_bit in 0..8 {
            let mut col = [0u8; 4];
            col[in_byte] = 1 << in_bit;
            let out = mix_single_column(&col);
            for (out_byte, &ob) in out.iter().enumerate() {
                for out_bit in 0..8 {
                    if (ob >> out_bit) & 1 == 1 {
                        matrix[8 * in_byte + in_bit][8 * out_byte + out_bit] = 1;
                    }
                }
            }
        }
    }
    matrix
}

/// Reference MixColumns on a single column.
pub fn mix_single_column(col: &[u8; 4]) -> [u8; 4] {
    [
        gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3],
        col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3],
        col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3),
        gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2),
    ]
}

/// Unpacks a column's 4 bytes into 32 bits (LSB-first per byte).
pub fn column_to_bits(col: &[u8; 4]) -> Vec<i64> {
    let mut bits = Vec::with_capacity(32);
    for &byte in col {
        for bit in 0..8 {
            bits.push(i64::from((byte >> bit) & 1));
        }
    }
    bits
}

/// Packs 32 bits back into a column.
///
/// # Panics
///
/// Panics if `bits` is not exactly 32 entries of 0/1.
pub fn bits_to_column(bits: &[i64]) -> [u8; 4] {
    assert_eq!(bits.len(), 32, "a column is exactly 32 bits");
    let mut col = [0u8; 4];
    for (i, &b) in bits.iter().enumerate() {
        assert!(b == 0 || b == 1, "bit values must be 0 or 1");
        col[i / 8] |= (b as u8) << (i % 8);
    }
    col
}

/// The largest parity fan-in of any bitline — bounds the bitline count and
/// therefore the ADC levels needed.
pub fn max_fan_in(matrix: &[Vec<i64>]) -> usize {
    let cols = matrix.first().map_or(0, Vec::len);
    (0..cols)
        .map(|c| matrix.iter().filter(|row| row[c] != 0).count())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_reproduces_mixcolumns_exhaustively_per_byte() {
        let t = mixcolumns_matrix();
        // all single-byte inputs in each byte position, plus mixed cases
        for byte_pos in 0..4 {
            for v in 0..=255u8 {
                let mut col = [0u8; 4];
                col[byte_pos] = v;
                check_column(&t, &col);
            }
        }
        for seed in 0..64u32 {
            let col = [
                (seed * 7) as u8,
                (seed * 31 + 5) as u8,
                (seed * 101 + 17) as u8,
                (seed * 13 + 200) as u8,
            ];
            check_column(&t, &col);
        }
    }

    fn check_column(t: &[Vec<i64>], col: &[u8; 4]) {
        let bits = column_to_bits(col);
        // integer MVM then parity
        let out_bits: Vec<i64> = (0..32)
            .map(|c| {
                let count: i64 = (0..32).map(|r| bits[r] * t[r][c]).sum();
                count & 1
            })
            .collect();
        let packed = bits_to_column(&out_bits);
        assert_eq!(packed, mix_single_column(col), "column {col:?}");
    }

    #[test]
    fn bit_round_trip() {
        let col = [0xDE, 0xAD, 0xBE, 0xEF];
        assert_eq!(bits_to_column(&column_to_bits(&col)), col);
    }

    #[test]
    fn fan_in_is_small() {
        // §4.3/§7.3: the parity fan-in stays small, so counts fit a few
        // ADC levels.
        let t = mixcolumns_matrix();
        let fan_in = max_fan_in(&t);
        assert!(fan_in <= 7, "fan-in {fan_in}");
        assert!(fan_in >= 4, "fan-in {fan_in} suspiciously small");
    }

    #[test]
    fn matrix_is_binary_and_32x32() {
        let t = mixcolumns_matrix();
        assert_eq!(t.len(), 32);
        for row in &t {
            assert_eq!(row.len(), 32);
            assert!(row.iter().all(|&v| v == 0 || v == 1));
        }
    }
}
