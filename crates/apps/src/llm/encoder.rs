//! An integer transformer encoder layer (§5.2).
//!
//! Multi-head self-attention plus a feed-forward network, entirely in
//! Q16.16 integer arithmetic via [`super::intops`]. The DARTH-PUM
//! placement (reflected in the workload trace): the *attention mechanism*
//! — QKᵀ, softmax, attn·V — runs in the DCE because its matrices change
//! every token (reprogramming analog arrays would dominate, §5.2), while
//! the weight-static projections and the FFN run in the ACE.

use super::intops::{int_gelu, int_layernorm, int_softmax, qmul};
use crate::{Error, Result};
use darth_reram::NoiseRng;

/// Encoder dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderConfig {
    /// Model (hidden) dimension.
    pub d_model: usize,
    /// Attention heads (must divide `d_model`).
    pub heads: usize,
    /// Feed-forward inner dimension.
    pub d_ff: usize,
    /// Sequence length.
    pub seq_len: usize,
    /// Encoder layers.
    pub layers: usize,
}

impl EncoderConfig {
    /// A BERT-base-like configuration (the paper's LLMEnc scale).
    pub fn bert_base() -> Self {
        EncoderConfig {
            d_model: 768,
            heads: 12,
            d_ff: 3072,
            seq_len: 128,
            layers: 12,
        }
    }

    /// A BERT-large-like configuration (the big end of the shape sweep).
    pub fn bert_large() -> Self {
        EncoderConfig {
            d_model: 1024,
            heads: 16,
            d_ff: 4096,
            seq_len: 128,
            layers: 24,
        }
    }

    /// A GPT-2-XL-scale stack (1.5B-parameter class): 48 layers of
    /// `d_model` 1600 at a 1024-token context. Decoder-only in the
    /// original; modelled here as the same-shape encoder stack, which
    /// exercises identical kernel classes at ~20× BERT-base compute.
    pub fn gpt2_xl() -> Self {
        EncoderConfig {
            d_model: 1600,
            heads: 25,
            d_ff: 6400,
            seq_len: 1024,
            layers: 48,
        }
    }

    /// A DistilBERT-like configuration (half the layers of BERT-base).
    pub fn distilbert() -> Self {
        EncoderConfig {
            layers: 6,
            ..EncoderConfig::bert_base()
        }
    }

    /// A miniature configuration for functional tests.
    pub fn tiny() -> Self {
        EncoderConfig {
            d_model: 16,
            heads: 4,
            d_ff: 32,
            seq_len: 8,
            layers: 2,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns an error when `heads` does not divide `d_model` or any
    /// dimension is zero.
    pub fn validate(&self) -> Result<()> {
        if self.d_model == 0 || self.heads == 0 || self.d_ff == 0 || self.seq_len == 0 {
            return Err(Error::Mapping("encoder dimensions must be nonzero".into()));
        }
        if !self.d_model.is_multiple_of(self.heads) {
            return Err(Error::Mapping(format!(
                "heads {} must divide d_model {}",
                self.heads, self.d_model
            )));
        }
        Ok(())
    }

    /// Per-head dimension.
    pub fn d_head(&self) -> usize {
        self.d_model / self.heads
    }
}

/// Weight matrices of one layer, as small integers (Q0 weights; the
/// matmuls rescale back into Q16.16).
#[derive(Debug, Clone)]
struct LayerWeights {
    wq: Vec<Vec<i64>>,
    wk: Vec<Vec<i64>>,
    wv: Vec<Vec<i64>>,
    wo: Vec<Vec<i64>>,
    w1: Vec<Vec<i64>>,
    w2: Vec<Vec<i64>>,
}

fn synth_matrix(rng: &mut NoiseRng, rows: usize, cols: usize) -> Vec<Vec<i64>> {
    // fan-in scaled small integers: keep matmul outputs near unit scale
    let sigma = 16.0 / (rows as f64).sqrt();
    (0..rows)
        .map(|_| {
            (0..cols)
                .map(|_| (rng.gaussian(0.0, sigma).round() as i64).clamp(-31, 31))
                .collect()
        })
        .collect()
}

/// `out[s][j] = Σ_i x[s][i] · w[i][j] / 16` — integer matmul with the
/// weight scale (16) divided back out to stay in Q16.16.
fn matmul_q(x: &[Vec<i64>], w: &[Vec<i64>]) -> Vec<Vec<i64>> {
    let cols = w.first().map_or(0, Vec::len);
    x.iter()
        .map(|row| {
            (0..cols)
                .map(|j| {
                    let acc: i64 = row.iter().zip(w).map(|(&xi, wrow)| xi * wrow[j]).sum();
                    acc / 16
                })
                .collect()
        })
        .collect()
}

/// An integer multi-layer transformer encoder.
#[derive(Debug, Clone)]
pub struct Encoder {
    config: EncoderConfig,
    weights: Vec<LayerWeights>,
}

impl Encoder {
    /// Builds an encoder with deterministic synthetic weights.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors.
    pub fn new(config: EncoderConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        let mut rng = NoiseRng::seed_from(seed);
        let weights = (0..config.layers)
            .map(|_| LayerWeights {
                wq: synth_matrix(&mut rng, config.d_model, config.d_model),
                wk: synth_matrix(&mut rng, config.d_model, config.d_model),
                wv: synth_matrix(&mut rng, config.d_model, config.d_model),
                wo: synth_matrix(&mut rng, config.d_model, config.d_model),
                w1: synth_matrix(&mut rng, config.d_model, config.d_ff),
                w2: synth_matrix(&mut rng, config.d_ff, config.d_model),
            })
            .collect();
        Ok(Encoder { config, weights })
    }

    /// The configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Runs the full encoder stack over `input` (`seq_len × d_model`,
    /// Q16.16).
    ///
    /// # Errors
    ///
    /// Returns an error for a wrong-shaped input.
    pub fn forward(&self, input: &[Vec<i64>]) -> Result<Vec<Vec<i64>>> {
        if input.len() != self.config.seq_len
            || input.iter().any(|row| row.len() != self.config.d_model)
        {
            return Err(Error::Mapping(format!(
                "input must be {}x{}",
                self.config.seq_len, self.config.d_model
            )));
        }
        let mut x = input.to_vec();
        for layer in &self.weights {
            x = self.layer_forward(&x, layer);
        }
        Ok(x)
    }

    fn layer_forward(&self, x: &[Vec<i64>], w: &LayerWeights) -> Vec<Vec<i64>> {
        let cfg = &self.config;
        // --- attention (projections are ACE work; QK^T / softmax / attn.V
        // are DCE work — the placement only matters for the trace)
        let q = matmul_q(x, &w.wq);
        let k = matmul_q(x, &w.wk);
        let v = matmul_q(x, &w.wv);
        let d_head = cfg.d_head();
        let mut attn_out = vec![vec![0i64; cfg.d_model]; cfg.seq_len];
        for h in 0..cfg.heads {
            let lo = h * d_head;
            for s in 0..cfg.seq_len {
                // scores over the sequence for this query position
                let scores: Vec<i64> = (0..cfg.seq_len)
                    .map(|t| {
                        let dot: i64 = (lo..lo + d_head).map(|i| qmul(q[s][i], k[t][i])).sum();
                        // scale by 1/sqrt(d_head)
                        dot / (d_head as f64).sqrt() as i64
                    })
                    .collect();
                let probs = int_softmax(&scores);
                for i in lo..lo + d_head {
                    let acc: i64 = (0..cfg.seq_len).map(|t| qmul(probs[t], v[t][i])).sum();
                    attn_out[s][i] = acc;
                }
            }
        }
        let projected = matmul_q(&attn_out, &w.wo);
        // residual + layernorm
        let mut after_attn = Vec::with_capacity(cfg.seq_len);
        for (row, xrow) in projected.iter().zip(x) {
            let summed: Vec<i64> = row.iter().zip(xrow).map(|(&a, &b)| a + b).collect();
            after_attn.push(int_layernorm(&summed));
        }
        // --- FFN (ACE work)
        let hidden = matmul_q(&after_attn, &w.w1);
        let activated: Vec<Vec<i64>> = hidden
            .iter()
            .map(|row| row.iter().map(|&v| int_gelu(v)).collect())
            .collect();
        let ffn_out = matmul_q(&activated, &w.w2);
        let mut out = Vec::with_capacity(cfg.seq_len);
        for (row, xrow) in ffn_out.iter().zip(&after_attn) {
            let summed: Vec<i64> = row.iter().zip(xrow).map(|(&a, &b)| a + b).collect();
            out.push(int_layernorm(&summed));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llm::intops::to_q;

    fn input(cfg: &EncoderConfig, seed: u64) -> Vec<Vec<i64>> {
        let mut rng = NoiseRng::seed_from(seed);
        (0..cfg.seq_len)
            .map(|_| {
                (0..cfg.d_model)
                    .map(|_| to_q(rng.gaussian(0.0, 1.0)))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn config_validation() {
        assert!(EncoderConfig::bert_base().validate().is_ok());
        assert!(EncoderConfig {
            heads: 5,
            ..EncoderConfig::tiny()
        }
        .validate()
        .is_err());
        assert!(EncoderConfig {
            d_model: 0,
            ..EncoderConfig::tiny()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn forward_is_deterministic_and_shaped() {
        let cfg = EncoderConfig::tiny();
        let enc = Encoder::new(cfg, 5).expect("builds");
        let x = input(&cfg, 1);
        let a = enc.forward(&x).expect("runs");
        let b = enc.forward(&x).expect("runs");
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.seq_len);
        assert_eq!(a[0].len(), cfg.d_model);
    }

    #[test]
    fn output_rows_are_normalized() {
        let cfg = EncoderConfig::tiny();
        let enc = Encoder::new(cfg, 5).expect("builds");
        let out = enc.forward(&input(&cfg, 2)).expect("runs");
        for row in &out {
            let n = row.len() as f64;
            let mean: f64 = row
                .iter()
                .map(|&v| super::super::intops::from_q(v))
                .sum::<f64>()
                / n;
            assert!(mean.abs() < 0.05, "row mean {mean}");
        }
    }

    #[test]
    fn different_inputs_give_different_outputs() {
        let cfg = EncoderConfig::tiny();
        let enc = Encoder::new(cfg, 5).expect("builds");
        let a = enc.forward(&input(&cfg, 1)).expect("runs");
        let b = enc.forward(&input(&cfg, 99)).expect("runs");
        assert_ne!(a, b);
    }

    #[test]
    fn wrong_shape_is_rejected() {
        let cfg = EncoderConfig::tiny();
        let enc = Encoder::new(cfg, 5).expect("builds");
        assert!(enc.forward(&[]).is_err());
        let short = vec![vec![0i64; cfg.d_model - 1]; cfg.seq_len];
        assert!(enc.forward(&short).is_err());
    }
}
