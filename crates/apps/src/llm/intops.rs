//! Integer-only transformer kernels, after I-BERT (Kim et al., 2021).
//!
//! The paper's LLM encoder runs its non-MVM operations — softmax, GELU,
//! layer normalization, square root — on the DCE using I-BERT's
//! integer-only algorithms (§5.2). This module implements those kernels in
//! Q16.16 fixed point with pure integer arithmetic (shifts, adds,
//! multiplies), exactly the macro classes the digital pipelines provide.

/// Fixed-point scale (Q16.16).
pub const SCALE: i64 = 1 << 16;
/// `ln 2` in Q16.16.
const LN2_Q: i64 = 45_426; // round(ln(2) * 65536)

/// Converts a float to Q16.16 (test/support helper).
pub fn to_q(x: f64) -> i64 {
    (x * SCALE as f64).round() as i64
}

/// Converts Q16.16 back to float.
pub fn from_q(q: i64) -> f64 {
    q as f64 / SCALE as f64
}

/// Multiplies two Q16.16 numbers.
pub fn qmul(a: i64, b: i64) -> i64 {
    (a * b) >> 16
}

/// Integer square root of a non-negative integer (Newton's method) — the
/// I-BERT `int-sqrt` used by layer normalization.
///
/// # Panics
///
/// Panics on negative input.
pub fn int_sqrt(n: i64) -> i64 {
    assert!(n >= 0, "int_sqrt requires a non-negative input");
    if n < 2 {
        return n;
    }
    let mut x = 1i64 << ((64 - i64::from(n.leading_zeros())) / 2 + 1);
    loop {
        let next = (x + n / x) / 2;
        if next >= x {
            return x;
        }
        x = next;
    }
}

/// I-BERT integer exponential for non-positive Q16.16 inputs:
/// `exp(x) = 2^(-z) · poly(r)` with `x = -z·ln2 + r`, `r ∈ (-ln2, 0]`, and
/// the second-order polynomial `0.3585·(r + 1.353)² + 0.344`.
///
/// Inputs above zero are clamped to zero (softmax always shifts by the
/// maximum first).
pub fn int_exp(x: i64) -> i64 {
    let x = x.min(0);
    let z = (-x) / LN2_Q;
    // r in (-LN2_Q, 0]; poly(r) = a(r+b)^2 + c in Q16.16
    let r = x + z * LN2_Q;
    let a = to_q(0.3585);
    let b = to_q(1.353);
    let c = to_q(0.344);
    let t = r + b;
    let poly = qmul(a, qmul(t, t)) + c;
    if z >= 63 {
        0
    } else {
        poly >> z
    }
}

/// Integer softmax over Q16.16 logits: returns Q16.16 probabilities that
/// sum to ≈ [`SCALE`].
pub fn int_softmax(logits: &[i64]) -> Vec<i64> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = *logits.iter().max().expect("nonempty");
    let exps: Vec<i64> = logits.iter().map(|&l| int_exp(l - max)).collect();
    let sum: i64 = exps.iter().sum::<i64>().max(1);
    exps.iter().map(|&e| e * SCALE / sum).collect()
}

/// I-BERT integer GELU: `x · 0.5 · (1 + erf(x/√2))` with the sign-split
/// polynomial erf approximation `sign(x)·[a·(min(|x|, -b) + b)² + 1]`,
/// `a = -0.2888`, `b = -1.769` (all Q16.16).
pub fn int_gelu(x: i64) -> i64 {
    let a = to_q(-0.2888);
    let b = to_q(-1.769);
    let inv_sqrt2 = to_q(1.0 / std::f64::consts::SQRT_2);
    let xs = qmul(x, inv_sqrt2);
    let sign = if xs < 0 { -1 } else { 1 };
    let clipped = xs.abs().min(-b);
    let t = clipped + b;
    let erf = sign * (qmul(a, qmul(t, t)) + SCALE);
    let half = to_q(0.5);
    qmul(x, qmul(half, SCALE + erf))
}

/// Integer layer normalization over Q16.16 values: zero mean, unit
/// variance (times [`SCALE`]), using [`int_sqrt`].
pub fn int_layernorm(values: &[i64]) -> Vec<i64> {
    let n = values.len() as i64;
    if n == 0 {
        return Vec::new();
    }
    let mean = values.iter().sum::<i64>() / n;
    let var: i64 = values
        .iter()
        .map(|&v| {
            let d = v - mean;
            // keep the variance in Q16.16: d is Q16.16, d*d is Q32.32
            (d * d) >> 16
        })
        .sum::<i64>()
        / n;
    // std in Q16.16: sqrt(var_q16 << 16)
    let std = int_sqrt(var << 16).max(1);
    values.iter().map(|&v| (v - mean) * SCALE / std).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_round_trip() {
        for x in [-3.5, -1.0, 0.0, 0.25, 2.75] {
            assert!((from_q(to_q(x)) - x).abs() < 1e-4);
        }
        assert_eq!(qmul(to_q(2.0), to_q(3.0)), to_q(6.0));
    }

    #[test]
    fn int_sqrt_exact_squares() {
        for v in [0i64, 1, 4, 9, 144, 1 << 20, 99_980_001] {
            let r = int_sqrt(v);
            assert!(r * r <= v && (r + 1) * (r + 1) > v, "sqrt({v}) = {r}");
        }
    }

    #[test]
    fn int_exp_tracks_float_exp() {
        for x in [-8.0, -4.0, -2.0, -1.0, -0.5, -0.1, 0.0] {
            let got = from_q(int_exp(to_q(x)));
            let want = x.exp();
            assert!(
                (got - want).abs() < 0.02,
                "exp({x}): got {got}, want {want}"
            );
        }
        // positive inputs clamp to exp(0)
        assert_eq!(int_exp(to_q(3.0)), int_exp(0));
        // very negative underflows to zero
        assert_eq!(int_exp(to_q(-50.0)), 0);
    }

    #[test]
    fn softmax_sums_to_scale() {
        let logits: Vec<i64> = [-1.0, 0.5, 2.0, 0.0].iter().map(|&x| to_q(x)).collect();
        let probs = int_softmax(&logits);
        let sum: i64 = probs.iter().sum();
        assert!((sum - SCALE).abs() < 64, "sum {sum}");
        // monotone in the logits
        assert!(probs[2] > probs[1] && probs[1] > probs[3] && probs[3] > probs[0]);
        assert!(int_softmax(&[]).is_empty());
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a: Vec<i64> = [1.0, 2.0, 3.0].iter().map(|&x| to_q(x)).collect();
        let b: Vec<i64> = a.iter().map(|&x| x + to_q(10.0)).collect();
        let pa = int_softmax(&a);
        let pb = int_softmax(&b);
        for (x, y) in pa.iter().zip(&pb) {
            assert!((x - y).abs() <= 2, "{x} vs {y}");
        }
    }

    #[test]
    fn gelu_tracks_float_gelu() {
        let gelu = |x: f64| 0.5 * x * (1.0 + erf_approx(x / std::f64::consts::SQRT_2));
        for x in [-3.0, -1.5, -0.5, 0.0, 0.5, 1.5, 3.0] {
            let got = from_q(int_gelu(to_q(x)));
            let want = gelu(x);
            assert!(
                (got - want).abs() < 0.05,
                "gelu({x}): got {got}, want {want}"
            );
        }
    }

    // Abramowitz–Stegun erf approximation for the test oracle only.
    fn erf_approx(x: f64) -> f64 {
        let sign = if x < 0.0 { -1.0 } else { 1.0 };
        let x = x.abs();
        let t = 1.0 / (1.0 + 0.3275911 * x);
        let y = 1.0
            - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
                + 0.254829592)
                * t
                * (-x * x).exp();
        sign * y
    }

    #[test]
    fn layernorm_zero_mean_unit_variance() {
        let values: Vec<i64> = [3.0, -1.0, 4.0, 1.0, -5.0, 9.0, -2.0, 6.0]
            .iter()
            .map(|&x| to_q(x))
            .collect();
        let normed = int_layernorm(&values);
        let n = normed.len() as f64;
        let mean: f64 = normed.iter().map(|&v| from_q(v)).sum::<f64>() / n;
        let var: f64 = normed.iter().map(|&v| from_q(v).powi(2)).sum::<f64>() / n;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
        assert!(int_layernorm(&[]).is_empty());
    }

    #[test]
    fn layernorm_handles_constant_input() {
        let values = vec![to_q(2.0); 8];
        let normed = int_layernorm(&values);
        assert!(normed.iter().all(|&v| v == 0));
    }
}
