//! LLM encoder (§5.2): I-BERT integer kernels, an integer transformer
//! encoder with the DCE-attention / ACE-FFN split, and workload traces.

pub mod encoder;
pub mod intops;
pub mod workload;

pub use encoder::{Encoder, EncoderConfig};
