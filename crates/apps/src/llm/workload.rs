//! The LLM encoder workload trace (one sequence through the stack).
//!
//! Placement per §5.2: weight-static projections (QKV, output, FFN) are
//! ACE MVMs; the attention mechanism's activation–activation products and
//! the I-BERT non-linearities are DCE vector work. This split is why the
//! paper finds 71% of LLMEnc time in non-MVM operations on DARTH-PUM.

use super::encoder::EncoderConfig;
use darth_pum::trace::{Kernel, KernelOp, Trace, VectorKind};

/// Ops per scalar I-BERT softmax element (exp poly + normalize).
const SOFTMAX_OPS_PER_ELEM: u64 = 8;
/// Ops per scalar I-BERT GELU element.
const GELU_OPS_PER_ELEM: u64 = 6;
/// Ops per scalar layernorm element (mean/var/sqrt amortised).
const LAYERNORM_OPS_PER_ELEM: u64 = 6;

/// Builds the trace for one forward pass of the encoder stack.
pub fn encoder_trace(cfg: &EncoderConfig) -> Trace {
    let d = cfg.d_model as u64;
    let dff = cfg.d_ff as u64;
    let seq = cfg.seq_len as u64;
    let heads = cfg.heads as u64;
    let d_head = cfg.d_head() as u64;
    let layers = cfg.layers as u64;

    let kernels = vec![
        // --- ACE side: the weight-static projections.
        Kernel::new(
            "QKV-Proj",
            vec![KernelOp::Mvm {
                rows: d,
                cols: 3 * d,
                input_bits: 8,
                weight_bits: 8,
                batch: seq * layers,
            }],
        ),
        // --- DCE side: the attention mechanism (dynamic matrices).
        Kernel::new(
            "Attention",
            vec![
                // QK^T: seq x seq dots of length d_head per head
                KernelOp::Vector {
                    kind: VectorKind::Mul,
                    elements: heads * seq * seq * d_head,
                    bits: 8,
                    count: layers,
                },
                // attn . V
                KernelOp::Vector {
                    kind: VectorKind::Mul,
                    elements: heads * seq * seq * d_head,
                    bits: 8,
                    count: layers,
                },
            ],
        ),
        Kernel::new(
            "Softmax",
            vec![KernelOp::Vector {
                kind: VectorKind::Mul,
                elements: heads * seq * seq * SOFTMAX_OPS_PER_ELEM,
                bits: 16,
                count: layers,
            }],
        ),
        Kernel::new(
            "Out-Proj",
            vec![KernelOp::Mvm {
                rows: d,
                cols: d,
                input_bits: 8,
                weight_bits: 8,
                batch: seq * layers,
            }],
        ),
        Kernel::new(
            "LayerNorm",
            vec![KernelOp::Vector {
                kind: VectorKind::Mul,
                elements: 2 * seq * d * LAYERNORM_OPS_PER_ELEM,
                bits: 16,
                count: layers,
            }],
        ),
        // --- ACE side: the FFN (the paper's headline placement).
        Kernel::new(
            "FFN",
            vec![
                KernelOp::Mvm {
                    rows: d,
                    cols: dff,
                    input_bits: 8,
                    weight_bits: 8,
                    batch: seq * layers,
                },
                KernelOp::Vector {
                    kind: VectorKind::Mul,
                    elements: seq * dff * GELU_OPS_PER_ELEM,
                    bits: 16,
                    count: layers,
                },
                KernelOp::Mvm {
                    rows: dff,
                    cols: d,
                    input_bits: 8,
                    weight_bits: 8,
                    batch: seq * layers,
                },
            ],
        ),
    ];
    Trace::new("llm-encoder", kernels)
        .with_pipelines_per_item(16)
        .with_parallel_items(1 << 20)
}

/// A variant trace that *does* run attention on the ACE, paying the §5.2
/// reprogramming penalty — the ablation showing why the paper avoids it.
pub fn encoder_trace_attention_on_ace(cfg: &EncoderConfig) -> Trace {
    let d = cfg.d_model as u64;
    let seq = cfg.seq_len as u64;
    let heads = cfg.heads as u64;
    let d_head = cfg.d_head() as u64;
    let layers = cfg.layers as u64;
    let mut base = encoder_trace(cfg);
    // Replace the DCE attention kernel with ACE MVMs plus weight updates
    // (K and V must be reprogrammed every sequence).
    let attention = Kernel::new(
        "Attention",
        vec![
            KernelOp::WeightUpdate {
                rows: seq,
                cols: d,
                weight_bits: 8,
            },
            KernelOp::Mvm {
                rows: d_head,
                cols: seq,
                input_bits: 8,
                weight_bits: 8,
                batch: seq * heads * layers,
            },
            KernelOp::WeightUpdate {
                rows: seq,
                cols: d,
                weight_bits: 8,
            },
            KernelOp::Mvm {
                rows: seq,
                cols: d_head,
                input_bits: 8,
                weight_bits: 8,
                batch: seq * heads * layers,
            },
        ],
    );
    for kernel in &mut base.kernels {
        if kernel.name == "Attention" {
            *kernel = attention;
            break;
        }
    }
    base.name = "llm-encoder-attn-on-ace".to_owned();
    base
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_covers_both_domains() {
        let t = encoder_trace(&EncoderConfig::bert_base());
        assert!(t.kernel("FFN").is_some());
        assert!(t.kernel("Attention").is_some());
        assert!(t.kernel("Softmax").is_some());
        assert!(t.macs() > 0, "ACE work present");
        assert!(t.element_ops() > 0, "DCE work present");
    }

    #[test]
    fn attention_dominates_element_ops() {
        // §7.1: 71% of LLMEnc time is non-MVM; at the op level the
        // seq^2-scaled attention work dwarfs the pointwise kernels.
        let t = encoder_trace(&EncoderConfig::bert_base());
        let attn = t.kernel("Attention").expect("exists").element_ops();
        let ln = t.kernel("LayerNorm").expect("exists").element_ops();
        assert!(attn > ln);
    }

    #[test]
    fn ffn_is_the_mvm_heavyweight() {
        let t = encoder_trace(&EncoderConfig::bert_base());
        let ffn = t.kernel("FFN").expect("exists").macs();
        let qkv = t.kernel("QKV-Proj").expect("exists").macs();
        assert!(ffn > qkv);
    }

    #[test]
    fn ace_attention_variant_pays_reprogramming() {
        let cfg = EncoderConfig::bert_base();
        let dce = encoder_trace(&cfg);
        let ace = encoder_trace_attention_on_ace(&cfg);
        let has_update = ace
            .kernel("Attention")
            .expect("exists")
            .ops
            .iter()
            .any(|op| matches!(op, KernelOp::WeightUpdate { .. }));
        assert!(has_update);
        assert!(dce
            .kernel("Attention")
            .expect("exists")
            .ops
            .iter()
            .all(|op| !matches!(op, KernelOp::WeightUpdate { .. })));
    }
}
