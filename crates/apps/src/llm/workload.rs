//! The LLM encoder workload trace (one sequence through the stack).
//!
//! Placement per §5.2: weight-static projections (QKV, output, FFN) are
//! ACE MVMs; the attention mechanism's activation–activation products and
//! the I-BERT non-linearities are DCE vector work. This split is why the
//! paper finds 71% of LLMEnc time in non-MVM operations on DARTH-PUM.

use super::encoder::EncoderConfig;
use darth_pum::eval::Workload;
use darth_pum::trace::{Kernel, KernelOp, Trace, TraceCollector, TraceMeta, TraceSink, VectorKind};

/// Ops per scalar I-BERT softmax element (exp poly + normalize).
const SOFTMAX_OPS_PER_ELEM: u64 = 8;
/// Ops per scalar I-BERT GELU element.
const GELU_OPS_PER_ELEM: u64 = 6;
/// Ops per scalar layernorm element (mean/var/sqrt amortised).
const LAYERNORM_OPS_PER_ELEM: u64 = 6;

/// Streams one forward pass of the encoder stack into `sink`, kernel by
/// kernel, under the given work-item name.
pub fn emit_encoder(cfg: &EncoderConfig, name: &str, sink: &mut dyn TraceSink) {
    let d = cfg.d_model as u64;
    let dff = cfg.d_ff as u64;
    let seq = cfg.seq_len as u64;
    let heads = cfg.heads as u64;
    let d_head = cfg.d_head() as u64;
    let layers = cfg.layers as u64;

    sink.begin_trace(
        &TraceMeta::new(name)
            .with_pipelines_per_item(16)
            .with_parallel_items(1 << 20),
    );
    // --- ACE side: the weight-static projections.
    sink.begin_kernel("QKV-Proj");
    sink.op(&KernelOp::Mvm {
        rows: d,
        cols: 3 * d,
        input_bits: 8,
        weight_bits: 8,
        batch: seq * layers,
    });
    // --- DCE side: the attention mechanism (dynamic matrices).
    sink.begin_kernel("Attention");
    // QK^T: seq x seq dots of length d_head per head, then attn . V
    let attention_mul = KernelOp::Vector {
        kind: VectorKind::Mul,
        elements: heads * seq * seq * d_head,
        bits: 8,
        count: layers,
    };
    sink.op(&attention_mul);
    sink.op(&attention_mul);
    sink.begin_kernel("Softmax");
    sink.op(&KernelOp::Vector {
        kind: VectorKind::Mul,
        elements: heads * seq * seq * SOFTMAX_OPS_PER_ELEM,
        bits: 16,
        count: layers,
    });
    sink.begin_kernel("Out-Proj");
    sink.op(&KernelOp::Mvm {
        rows: d,
        cols: d,
        input_bits: 8,
        weight_bits: 8,
        batch: seq * layers,
    });
    sink.begin_kernel("LayerNorm");
    sink.op(&KernelOp::Vector {
        kind: VectorKind::Mul,
        elements: 2 * seq * d * LAYERNORM_OPS_PER_ELEM,
        bits: 16,
        count: layers,
    });
    // --- ACE side: the FFN (the paper's headline placement).
    sink.begin_kernel("FFN");
    sink.op(&KernelOp::Mvm {
        rows: d,
        cols: dff,
        input_bits: 8,
        weight_bits: 8,
        batch: seq * layers,
    });
    sink.op(&KernelOp::Vector {
        kind: VectorKind::Mul,
        elements: seq * dff * GELU_OPS_PER_ELEM,
        bits: 16,
        count: layers,
    });
    sink.op(&KernelOp::Mvm {
        rows: dff,
        cols: d,
        input_bits: 8,
        weight_bits: 8,
        batch: seq * layers,
    });
}

/// Builds the materialized trace for one forward pass of the encoder
/// stack by collecting [`emit_encoder`].
pub fn encoder_trace(cfg: &EncoderConfig) -> Trace {
    let mut collector = TraceCollector::new();
    emit_encoder(cfg, "llm-encoder", &mut collector);
    collector.finish()
}

/// A variant trace that *does* run attention on the ACE, paying the §5.2
/// reprogramming penalty — the ablation showing why the paper avoids it.
pub fn encoder_trace_attention_on_ace(cfg: &EncoderConfig) -> Trace {
    let d = cfg.d_model as u64;
    let seq = cfg.seq_len as u64;
    let heads = cfg.heads as u64;
    let d_head = cfg.d_head() as u64;
    let layers = cfg.layers as u64;
    let mut base = encoder_trace(cfg);
    // Replace the DCE attention kernel with ACE MVMs plus weight updates
    // (K and V must be reprogrammed every sequence).
    let attention = Kernel::new(
        "Attention",
        vec![
            KernelOp::WeightUpdate {
                rows: seq,
                cols: d,
                weight_bits: 8,
            },
            KernelOp::Mvm {
                rows: d_head,
                cols: seq,
                input_bits: 8,
                weight_bits: 8,
                batch: seq * heads * layers,
            },
            KernelOp::WeightUpdate {
                rows: seq,
                cols: d,
                weight_bits: 8,
            },
            KernelOp::Mvm {
                rows: seq,
                cols: d_head,
                input_bits: 8,
                weight_bits: 8,
                batch: seq * heads * layers,
            },
        ],
    );
    for kernel in &mut base.kernels {
        if kernel.name == "Attention" {
            *kernel = attention;
            break;
        }
    }
    base.name = "llm-encoder-attn-on-ace".to_owned();
    base
}

/// An encoder forward pass as a pluggable [`Workload`], parameterized by
/// the full [`EncoderConfig`] — the model-shape sweep axis of the
/// evaluation matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncoderWorkload {
    /// Encoder dimensions.
    pub config: EncoderConfig,
    name: String,
    label: String,
}

impl EncoderWorkload {
    /// The paper's evaluation scenario (BERT-base shape), keeping the
    /// legacy `"llm-encoder"` trace name the figures key on.
    pub fn paper() -> Self {
        EncoderWorkload {
            config: EncoderConfig::bert_base(),
            name: "llm-encoder".into(),
            label: "LLMEnc".into(),
        }
    }

    /// A named scenario over an arbitrary configuration.
    pub fn named(name: impl Into<String>, label: impl Into<String>, config: EncoderConfig) -> Self {
        EncoderWorkload {
            config,
            name: name.into(),
            label: label.into(),
        }
    }

    /// The encoder shape sweep: the paper scenario plus a distilled
    /// 6-layer stack, a BERT-large stack, and a long-sequence variant
    /// (attention work scales with `seq²`, so this shifts the MVM/vector
    /// balance the §7.1 discussion hinges on).
    pub fn sweep() -> Vec<EncoderWorkload> {
        let long = EncoderConfig {
            seq_len: 512,
            ..EncoderConfig::bert_base()
        };
        vec![
            EncoderWorkload::paper(),
            EncoderWorkload::named("llm-distil", "LLMEnc-distil", EncoderConfig::distilbert()),
            EncoderWorkload::named("llm-large", "LLMEnc-large", EncoderConfig::bert_large()),
            EncoderWorkload::named("llm-seq512", "LLMEnc-s512", long),
        ]
    }

    /// The large-scale scenarios behind `make eval-large`: a BERT-large
    /// stack at a 4096-token context (the `seq²` attention blow-up) and
    /// a GPT-2-XL-scale 48-layer stack.
    pub fn large_scale() -> Vec<EncoderWorkload> {
        let bert_large_long = EncoderConfig {
            seq_len: 4096,
            ..EncoderConfig::bert_large()
        };
        vec![
            EncoderWorkload::named("llm-large-seq4096", "LLMEnc-L-s4096", bert_large_long),
            EncoderWorkload::named("llm-gpt2-xl", "GPT2-XL", EncoderConfig::gpt2_xl()),
        ]
    }
}

impl Workload for EncoderWorkload {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn params(&self) -> Vec<(String, String)> {
        vec![
            ("d_model".into(), self.config.d_model.to_string()),
            ("heads".into(), self.config.heads.to_string()),
            ("d_ff".into(), self.config.d_ff.to_string()),
            ("seq_len".into(), self.config.seq_len.to_string()),
            ("layers".into(), self.config.layers.to_string()),
        ]
    }

    fn emit(&self, sink: &mut dyn TraceSink) {
        emit_encoder(&self.config, &self.name, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_workload_sweep_varies_shape() {
        let sweep = EncoderWorkload::sweep();
        assert_eq!(
            sweep[0].build_trace(),
            encoder_trace(&EncoderConfig::bert_base())
        );
        let base = sweep[0].build_trace();
        let distil = sweep[1].build_trace();
        let long = sweep[3].build_trace();
        assert_eq!(distil.name, "llm-distil");
        assert!(distil.macs() < base.macs(), "6 layers < 12 layers");
        // seq² attention scaling: the long variant is vector-heavier.
        assert!(long.mvm_fraction() < base.mvm_fraction());
    }

    #[test]
    fn trace_covers_both_domains() {
        let t = encoder_trace(&EncoderConfig::bert_base());
        assert!(t.kernel("FFN").is_some());
        assert!(t.kernel("Attention").is_some());
        assert!(t.kernel("Softmax").is_some());
        assert!(t.macs() > 0, "ACE work present");
        assert!(t.element_ops() > 0, "DCE work present");
    }

    #[test]
    fn attention_dominates_element_ops() {
        // §7.1: 71% of LLMEnc time is non-MVM; at the op level the
        // seq^2-scaled attention work dwarfs the pointwise kernels.
        let t = encoder_trace(&EncoderConfig::bert_base());
        let attn = t.kernel("Attention").expect("exists").element_ops();
        let ln = t.kernel("LayerNorm").expect("exists").element_ops();
        assert!(attn > ln);
    }

    #[test]
    fn ffn_is_the_mvm_heavyweight() {
        let t = encoder_trace(&EncoderConfig::bert_base());
        let ffn = t.kernel("FFN").expect("exists").macs();
        let qkv = t.kernel("QKV-Proj").expect("exists").macs();
        assert!(ffn > qkv);
    }

    #[test]
    fn ace_attention_variant_pays_reprogramming() {
        let cfg = EncoderConfig::bert_base();
        let dce = encoder_trace(&cfg);
        let ace = encoder_trace_attention_on_ace(&cfg);
        let has_update = ace
            .kernel("Attention")
            .expect("exists")
            .ops
            .iter()
            .any(|op| matches!(op, KernelOp::WeightUpdate { .. }));
        assert!(has_update);
        assert!(dce
            .kernel("Attention")
            .expect("exists")
            .ops
            .iter()
            .all(|op| !matches!(op, KernelOp::WeightUpdate { .. })));
    }
}
