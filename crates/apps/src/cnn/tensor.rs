//! A small fixed-point tensor library for quantized CNN inference.
//!
//! Everything is integer: activations and weights are 8-bit quantities in
//! `i32` storage, convolution accumulates in `i64`, and a per-layer
//! right-shift requantizes back into the 8-bit activation range — the same
//! arithmetic a DARTH-PUM deployment performs (analog MVM accumulators
//! reduced in the DCE, shifts and clamps as digital macros).
//!
//! Convolutions lower to matrix–vector products by Toeplitz (im2col)
//! expansion (§5.1), which is also how layer shapes translate into
//! [`darth_pum::trace::KernelOp::Mvm`] entries.

use crate::{Error, Result};

/// Activation clamp range (signed 8-bit).
pub const ACT_MIN: i32 = -128;
/// Activation clamp range (signed 8-bit).
pub const ACT_MAX: i32 = 127;

/// A channels × height × width integer tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tensor3 {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<i32>,
}

impl Tensor3 {
    /// Creates a zero tensor.
    ///
    /// # Errors
    ///
    /// Returns an error for zero dimensions.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Result<Self> {
        if channels == 0 || height == 0 || width == 0 {
            return Err(Error::Mapping("tensor dimensions must be nonzero".into()));
        }
        Ok(Tensor3 {
            channels,
            height,
            width,
            data: vec![0; channels * height * width],
        })
    }

    /// Creates a tensor from raw data in CHW order.
    ///
    /// # Errors
    ///
    /// Returns an error when `data` does not match the shape.
    pub fn from_data(channels: usize, height: usize, width: usize, data: Vec<i32>) -> Result<Self> {
        if data.len() != channels * height * width {
            return Err(Error::Mapping(format!(
                "data length {} does not match {channels}x{height}x{width}",
                data.len()
            )));
        }
        Ok(Tensor3 {
            channels,
            height,
            width,
            data,
        })
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Raw data in CHW order.
    pub fn data(&self) -> &[i32] {
        &self.data
    }

    /// Element access.
    pub fn get(&self, c: usize, y: usize, x: usize) -> i32 {
        self.data[(c * self.height + y) * self.width + x]
    }

    /// Element mutation.
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: i32) {
        self.data[(c * self.height + y) * self.width + x] = v;
    }

    /// In-place ReLU.
    pub fn relu(&mut self) {
        for v in &mut self.data {
            *v = (*v).max(0);
        }
    }

    /// In-place clamp into the 8-bit activation range.
    pub fn clamp_activation(&mut self) {
        for v in &mut self.data {
            *v = (*v).clamp(ACT_MIN, ACT_MAX);
        }
    }

    /// Element-wise addition (residual shortcut).
    ///
    /// # Errors
    ///
    /// Returns an error when shapes differ.
    pub fn add(&mut self, other: &Tensor3) -> Result<()> {
        if self.channels != other.channels
            || self.height != other.height
            || self.width != other.width
        {
            return Err(Error::Mapping("residual add shape mismatch".into()));
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
        Ok(())
    }
}

/// Convolution weights: `[out_ch][in_ch][k][k]` flattened, with one bias
/// per output channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvWeights {
    out_channels: usize,
    in_channels: usize,
    kernel: usize,
    weights: Vec<i32>,
    bias: Vec<i32>,
}

impl ConvWeights {
    /// Creates convolution weights.
    ///
    /// # Errors
    ///
    /// Returns an error when lengths do not match the declared shape.
    pub fn new(
        out_channels: usize,
        in_channels: usize,
        kernel: usize,
        weights: Vec<i32>,
        bias: Vec<i32>,
    ) -> Result<Self> {
        if weights.len() != out_channels * in_channels * kernel * kernel {
            return Err(Error::Mapping("weight length mismatch".into()));
        }
        if bias.len() != out_channels {
            return Err(Error::Mapping("bias length mismatch".into()));
        }
        Ok(ConvWeights {
            out_channels,
            in_channels,
            kernel,
            weights,
            bias,
        })
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// One bias value.
    pub fn bias(&self, co: usize) -> i32 {
        self.bias[co]
    }

    /// One weight value.
    pub fn weight(&self, co: usize, ci: usize, ky: usize, kx: usize) -> i32 {
        self.weights[((co * self.in_channels + ci) * self.kernel + ky) * self.kernel + kx]
    }

    /// The Toeplitz (im2col) MVM shape of this convolution: `(rows, cols)`
    /// = `(in_ch·k·k, out_ch)`.
    pub fn mvm_shape(&self) -> (usize, usize) {
        (
            self.in_channels * self.kernel * self.kernel,
            self.out_channels,
        )
    }
}

/// 2-D convolution with zero padding `pad`, stride `stride`, and
/// requantization by `shift` (arithmetic right shift after bias), clamped
/// to the 8-bit activation range.
///
/// # Errors
///
/// Returns an error on channel mismatch or a zero stride.
pub fn conv2d(
    input: &Tensor3,
    w: &ConvWeights,
    stride: usize,
    pad: usize,
    shift: u32,
) -> Result<Tensor3> {
    if input.channels() != w.in_channels() {
        return Err(Error::Mapping(format!(
            "conv input has {} channels, weights expect {}",
            input.channels(),
            w.in_channels()
        )));
    }
    if stride == 0 {
        return Err(Error::Mapping("stride must be nonzero".into()));
    }
    let out_h = (input.height() + 2 * pad - w.kernel()) / stride + 1;
    let out_w = (input.width() + 2 * pad - w.kernel()) / stride + 1;
    let mut out = Tensor3::zeros(w.out_channels(), out_h, out_w)?;
    for co in 0..w.out_channels() {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc: i64 = i64::from(w.bias(co));
                for ci in 0..input.channels() {
                    for ky in 0..w.kernel() {
                        for kx in 0..w.kernel() {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if iy < 0
                                || ix < 0
                                || iy >= input.height() as isize
                                || ix >= input.width() as isize
                            {
                                continue;
                            }
                            acc += i64::from(input.get(ci, iy as usize, ix as usize))
                                * i64::from(w.weight(co, ci, ky, kx));
                        }
                    }
                }
                let v = (acc >> shift) as i32;
                out.set(co, oy, ox, v.clamp(ACT_MIN, ACT_MAX));
            }
        }
    }
    Ok(out)
}

/// Global average pooling: one value per channel.
pub fn global_avg_pool(input: &Tensor3) -> Vec<i32> {
    let area = (input.height() * input.width()) as i64;
    (0..input.channels())
        .map(|c| {
            let sum: i64 = (0..input.height())
                .flat_map(|y| (0..input.width()).map(move |x| (y, x)))
                .map(|(y, x)| i64::from(input.get(c, y, x)))
                .sum();
            (sum / area) as i32
        })
        .collect()
}

/// Fully connected layer: `logits = W·x + b` (no requantization — logits
/// feed an argmax or the trainer).
///
/// # Errors
///
/// Returns an error for mismatched lengths.
pub fn fully_connected(input: &[i32], weights: &[Vec<i32>], bias: &[i32]) -> Result<Vec<i64>> {
    if weights.len() != bias.len() {
        return Err(Error::Mapping("fc weight/bias mismatch".into()));
    }
    weights
        .iter()
        .zip(bias)
        .map(|(row, &b)| {
            if row.len() != input.len() {
                return Err(Error::Mapping(format!(
                    "fc row length {} does not match input {}",
                    row.len(),
                    input.len()
                )));
            }
            Ok(row
                .iter()
                .zip(input)
                .map(|(&w, &x)| i64::from(w) * i64::from(x))
                .sum::<i64>()
                + i64::from(b))
        })
        .collect()
}

/// The im2col row for one output position — the Toeplitz expansion the
/// paper maps onto crossbar wordlines.
pub fn im2col_row(
    input: &Tensor3,
    kernel: usize,
    stride: usize,
    pad: usize,
    oy: usize,
    ox: usize,
) -> Vec<i32> {
    let mut row = Vec::with_capacity(input.channels() * kernel * kernel);
    for ci in 0..input.channels() {
        for ky in 0..kernel {
            for kx in 0..kernel {
                let iy = (oy * stride + ky) as isize - pad as isize;
                let ix = (ox * stride + kx) as isize - pad as isize;
                if iy < 0 || ix < 0 || iy >= input.height() as isize || ix >= input.width() as isize
                {
                    row.push(0);
                } else {
                    row.push(input.get(ci, iy as usize, ix as usize));
                }
            }
        }
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_tensor(c: usize, h: usize, w: usize) -> Tensor3 {
        Tensor3::from_data(c, h, w, (0..(c * h * w) as i32).collect()).expect("valid")
    }

    #[test]
    fn tensor_shape_validation() {
        assert!(Tensor3::zeros(0, 1, 1).is_err());
        assert!(Tensor3::from_data(1, 2, 2, vec![1, 2, 3]).is_err());
        assert!(Tensor3::from_data(1, 2, 2, vec![1, 2, 3, 4]).is_ok());
    }

    #[test]
    fn identity_convolution() {
        let input = ramp_tensor(1, 3, 3);
        let w = ConvWeights::new(1, 1, 1, vec![1], vec![0]).expect("valid");
        let out = conv2d(&input, &w, 1, 0, 0).expect("runs");
        assert_eq!(out, input);
    }

    #[test]
    fn conv_known_3x3_sum() {
        // all-ones 3x3 kernel on an all-ones image with pad 1: interior
        // sums 9, corners 4, edges 6.
        let input = Tensor3::from_data(1, 3, 3, vec![1; 9]).expect("valid");
        let w = ConvWeights::new(1, 1, 3, vec![1; 9], vec![0]).expect("valid");
        let out = conv2d(&input, &w, 1, 1, 0).expect("runs");
        assert_eq!(out.get(0, 1, 1), 9);
        assert_eq!(out.get(0, 0, 0), 4);
        assert_eq!(out.get(0, 0, 1), 6);
    }

    #[test]
    fn stride_halves_output() {
        let input = ramp_tensor(1, 8, 8);
        let w = ConvWeights::new(1, 1, 1, vec![1], vec![0]).expect("valid");
        let out = conv2d(&input, &w, 2, 0, 0).expect("runs");
        assert_eq!(out.height(), 4);
        assert_eq!(out.width(), 4);
        assert_eq!(out.get(0, 1, 1), input.get(0, 2, 2));
    }

    #[test]
    fn shift_requantizes_and_clamps() {
        let input = Tensor3::from_data(1, 1, 1, vec![64]).expect("valid");
        let w = ConvWeights::new(1, 1, 1, vec![64], vec![0]).expect("valid");
        let out = conv2d(&input, &w, 1, 0, 6).expect("runs");
        assert_eq!(out.get(0, 0, 0), 64); // 64*64 >> 6
        let out2 = conv2d(&input, &w, 1, 0, 0).expect("runs");
        assert_eq!(out2.get(0, 0, 0), ACT_MAX);
    }

    #[test]
    fn bias_applies_before_shift() {
        let input = Tensor3::from_data(1, 1, 1, vec![0]).expect("valid");
        let w = ConvWeights::new(1, 1, 1, vec![0], vec![32]).expect("valid");
        let out = conv2d(&input, &w, 1, 0, 5).expect("runs");
        assert_eq!(out.get(0, 0, 0), 1);
    }

    #[test]
    fn relu_and_clamp() {
        let mut t = Tensor3::from_data(1, 1, 4, vec![-5, 3, 200, -300]).expect("valid");
        t.clamp_activation();
        assert_eq!(t.data(), &[-5, 3, 127, -128]);
        t.relu();
        assert_eq!(t.data(), &[0, 3, 127, 0]);
    }

    #[test]
    fn residual_add_checks_shape() {
        let mut a = ramp_tensor(1, 2, 2);
        let b = ramp_tensor(1, 2, 2);
        a.add(&b).expect("same shape");
        assert_eq!(a.get(0, 1, 1), 6);
        let c = ramp_tensor(2, 2, 2);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn global_pool_averages() {
        let t = Tensor3::from_data(2, 2, 2, vec![1, 2, 3, 4, 10, 10, 10, 10]).expect("valid");
        assert_eq!(global_avg_pool(&t), vec![2, 10]);
    }

    #[test]
    fn fully_connected_matches_dot() {
        let logits =
            fully_connected(&[1, 2, 3], &[vec![1, 0, 0], vec![1, 1, 1]], &[5, 0]).expect("runs");
        assert_eq!(logits, vec![6, 6]);
        assert!(fully_connected(&[1], &[vec![1, 2]], &[0]).is_err());
    }

    #[test]
    fn im2col_matches_direct_convolution() {
        let input = ramp_tensor(2, 4, 4);
        let w = ConvWeights::new(
            3,
            2,
            3,
            (0..3 * 2 * 3 * 3).map(|i| (i % 5) - 2).collect(),
            vec![0, 1, -1],
        )
        .expect("valid");
        let direct = conv2d(&input, &w, 1, 1, 0).expect("runs");
        for oy in 0..4 {
            for ox in 0..4 {
                let row = im2col_row(&input, 3, 1, 1, oy, ox);
                for co in 0..3 {
                    let mut acc = 0i64;
                    for (idx, &x) in row.iter().enumerate() {
                        let ci = idx / 9;
                        let ky = (idx % 9) / 3;
                        let kx = idx % 3;
                        acc += i64::from(x) * i64::from(w.weight(co, ci, ky, kx));
                    }
                    acc += i64::from(w.bias(co));
                    let expected = (acc as i32).clamp(ACT_MIN, ACT_MAX);
                    assert_eq!(direct.get(co, oy, ox), expected, "({co},{oy},{ox})");
                }
            }
        }
    }

    #[test]
    fn mvm_shape_is_toeplitz() {
        let w = ConvWeights::new(16, 3, 3, vec![0; 16 * 3 * 9], vec![0; 16]).expect("valid");
        assert_eq!(w.mvm_shape(), (27, 16));
    }
}
