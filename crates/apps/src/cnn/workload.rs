//! The ResNet-20 workload trace (one inference).
//!
//! Each conv layer becomes one kernel named after its Figure 15 row: a
//! Toeplitz MVM (`rows = in_ch·k²`, `cols = out_ch`, one batch entry per
//! output position) plus the auxiliary vector work (bias, ReLU, residual
//! adds) the DCE absorbs. The classifier contributes the final
//! `Seq-b4-Seq` kernel.

use super::resnet::ResNet;
use crate::Result;
use darth_pum::eval::Workload;
use darth_pum::trace::{KernelOp, Trace, TraceCollector, TraceMeta, TraceSink, VectorKind};

/// Streams one inference — one kernel per conv layer plus the
/// classifier — into `sink`, layer by layer as the conv plan is walked,
/// under the given work-item name.
pub fn emit_inference(net: &ResNet, name: &str, sink: &mut dyn TraceSink) {
    sink.begin_trace(
        // one inference is one item; batching replicates the whole model
        &TraceMeta::new(name)
            .with_pipelines_per_item(8)
            .with_parallel_items(1 << 20),
    );
    for (layer, in_size) in net.conv_plan() {
        let (rows, cols) = layer.weights.mvm_shape();
        let out_size = layer.out_size(in_size);
        let positions = (out_size * out_size) as u64;
        sink.begin_kernel(&layer.name);
        sink.op(&KernelOp::Mvm {
            rows: rows as u64,
            cols: cols as u64,
            input_bits: 8,
            weight_bits: 8,
            batch: positions,
        });
        // bias add + requantizing shift + ReLU per output element
        for kind in [VectorKind::Add, VectorKind::Shift, VectorKind::Compare] {
            sink.op(&KernelOp::Vector {
                kind,
                elements: cols as u64 * positions,
                bits: 8,
                count: 1,
            });
        }
    }
    // Global average pool + classifier.
    let feat = net.feature_dim() as u64;
    sink.begin_kernel("Seq-b4-Seq");
    sink.op(&KernelOp::Vector {
        kind: VectorKind::Add,
        elements: feat * 64,
        bits: 8,
        count: 1,
    });
    sink.op(&KernelOp::Mvm {
        rows: feat,
        cols: net.classes() as u64,
        input_bits: 8,
        weight_bits: 8,
        batch: 1,
    });
}

/// Builds the materialized per-layer inference trace for a network by
/// collecting [`emit_inference`].
///
/// # Errors
///
/// Propagates plan construction errors (none for a valid network).
pub fn inference_trace(net: &ResNet) -> Result<Trace> {
    let mut collector = TraceCollector::new();
    emit_inference(net, &format!("resnet-{}", net.depth()), &mut collector);
    Ok(collector.finish())
}

/// A CIFAR-style ResNet inference as a pluggable [`Workload`]: the depth
/// sweep axis of the evaluation matrix (ResNet-20/32/44/56/…, plus a
/// `base_width` knob for wide variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResNetWorkload {
    /// Residual blocks per stage (depth `6·blocks_per_stage + 2`).
    pub blocks_per_stage: usize,
    /// Stage-1 channel count (doubles per stage; 16 for the paper's
    /// ResNet-20).
    pub base_width: usize,
    /// Weight-synthesis seed.
    pub seed: u64,
}

impl ResNetWorkload {
    /// The paper's evaluation scenario: ResNet-20, 16 base channels.
    pub fn paper() -> Self {
        ResNetWorkload {
            blocks_per_stage: 3,
            base_width: 16,
            seed: 1,
        }
    }

    /// The classic CIFAR depth sweep at paper width: ResNet-20/32/44/56.
    pub fn depth_sweep() -> Vec<ResNetWorkload> {
        [3, 5, 7, 9]
            .into_iter()
            .map(|blocks_per_stage| ResNetWorkload {
                blocks_per_stage,
                ..ResNetWorkload::paper()
            })
            .collect()
    }

    /// The deep end of the CIFAR family: ResNet-110 (18 blocks per
    /// stage), the large-CNN scenario of the `eval-large` registry.
    pub fn resnet110() -> Self {
        ResNetWorkload {
            blocks_per_stage: 18,
            ..ResNetWorkload::paper()
        }
    }

    fn depth(&self) -> usize {
        6 * self.blocks_per_stage + 2
    }
}

impl Workload for ResNetWorkload {
    fn name(&self) -> String {
        if self.base_width == 16 {
            format!("resnet-{}", self.depth())
        } else {
            format!("resnet-{}-w{}", self.depth(), self.base_width)
        }
    }

    fn label(&self) -> String {
        format!("ResNet-{}", self.depth())
    }

    fn params(&self) -> Vec<(String, String)> {
        vec![
            ("blocks_per_stage".into(), self.blocks_per_stage.to_string()),
            ("base_width".into(), self.base_width.to_string()),
            ("seed".into(), self.seed.to_string()),
        ]
    }

    fn emit(&self, sink: &mut dyn TraceSink) {
        let net = ResNet::with_depth(32, self.base_width, 3, 10, self.blocks_per_stage, self.seed)
            .expect("CIFAR ResNet parameters are valid by construction");
        emit_inference(&net, &self.name(), sink);
    }
}

/// The Figure 15 layer-name row order for the full ResNet-20.
pub fn figure15_layer_order(net: &ResNet) -> Vec<String> {
    net.layer_names()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnn::resnet::ResNet;

    #[test]
    fn trace_covers_every_figure15_layer() {
        let net = ResNet::resnet20(1).expect("builds");
        let trace = inference_trace(&net).expect("builds");
        for name in figure15_layer_order(&net) {
            assert!(trace.kernel(&name).is_some(), "missing layer {name}");
        }
        assert_eq!(trace.kernels.len(), 22);
    }

    #[test]
    fn resnet20_mac_count_is_roughly_40m() {
        // The CIFAR-10 ResNet-20 is ~40.5M MACs per inference.
        let net = ResNet::resnet20(1).expect("builds");
        let trace = inference_trace(&net).expect("builds");
        let macs = trace.macs();
        assert!(
            (30_000_000..60_000_000).contains(&macs),
            "MACs {macs} out of ResNet-20 range"
        );
    }

    #[test]
    fn trace_is_mvm_dominated() {
        // §7.2: ResNet is the MVM-heavy workload.
        let net = ResNet::resnet20(1).expect("builds");
        let trace = inference_trace(&net).expect("builds");
        assert!(trace.mvm_fraction() > 0.9, "{}", trace.mvm_fraction());
    }

    #[test]
    fn depth_sweep_scales_layer_count_and_names() {
        let sweep = ResNetWorkload::depth_sweep();
        let names: Vec<String> = sweep.iter().map(Workload::name).collect();
        assert_eq!(names, ["resnet-20", "resnet-32", "resnet-44", "resnet-56"]);
        let t20 = sweep[0].build_trace();
        let t32 = sweep[1].build_trace();
        assert_eq!(t20.name, "resnet-20");
        assert_eq!(t32.name, "resnet-32");
        // 6 extra residual blocks = 12 extra conv kernels.
        assert_eq!(t32.kernels.len(), t20.kernels.len() + 12);
        assert!(t32.macs() > t20.macs());
        // The paper workload is bit-identical to the legacy builder.
        let legacy = inference_trace(&ResNet::resnet20(1).expect("builds")).expect("builds");
        assert_eq!(ResNetWorkload::paper().build_trace(), legacy);
    }

    #[test]
    fn stem_layer_shape() {
        let net = ResNet::resnet20(1).expect("builds");
        let trace = inference_trace(&net).expect("builds");
        let stem = trace.kernel("c1-Conv1").expect("exists");
        match stem.ops[0] {
            KernelOp::Mvm {
                rows, cols, batch, ..
            } => {
                assert_eq!(rows, 27); // 3 channels x 3x3
                assert_eq!(cols, 16);
                assert_eq!(batch, 32 * 32);
            }
            ref other => panic!("stem op 0 should be an MVM, got {other:?}"),
        }
    }
}
