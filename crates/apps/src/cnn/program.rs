//! A convolution layer compiled to a self-contained ISA job.
//!
//! The §5.1 lowering made executable: the layer's weights become one
//! Toeplitz (im2col) matrix programmed into a vACore, each output pixel's
//! receptive field is staged as an input vector, and one analog MVM per
//! pixel produces all output channels at once, with the bias folded in by
//! a DCE `add`. The program is built as a `darth_kir` kernel IR and
//! compiled by its verify → allocate → lower pipeline. The differential
//! harness checks every output cell against the plain-Rust [`conv2d`]
//! reference.

use super::tensor::{conv2d, im2col_row, ConvWeights, Tensor3};
use crate::gemm::GemmWorkload;
use darth_kir::{CompiledKernel, KernelIr, KirBuilder};
use darth_pum::eval::{ExecJob, ExecOutput, Executable, SplitJob};
use darth_pum::hct::HctConfig;

/// Pipeline roles of the compiled convolution job.
const P_CONV_IN: u16 = 0;
const P_CONV_LAND: u16 = 1;
const CONV_DEPTH: usize = 16;
/// Output pixels the job shape supports (one parked patch register and
/// one result register per pixel, clear of the MVM landing cluster).
const CONV_MAX_PIXELS: usize = 8;

/// A quantized convolution layer compiled to an ISA job: deterministic
/// small-integer weights/activations sized so the raw accumulator (plus
/// bias) stays inside the 8-bit activation range — the golden
/// [`conv2d`] output is then bit-identical to the analog MVM path with
/// no requantization step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvExec {
    /// Input channels.
    pub in_channels: usize,
    /// Input height and width (square).
    pub size: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Kernel size (square, stride 1, no padding).
    pub kernel: usize,
    /// Data-synthesis seed.
    pub seed: u64,
}

impl ConvExec {
    /// The standard differential case: a 2-channel 4×4 input through a
    /// 3-output-channel 3×3 layer (2×2 output pixels).
    pub fn standard() -> Self {
        ConvExec {
            in_channels: 2,
            size: 4,
            out_channels: 3,
            kernel: 3,
            seed: 9,
        }
    }

    /// Output rows/cols (stride 1, no padding); `0` when the kernel
    /// does not fit the input (such configs are rejected by
    /// [`ConvExec::compiled`], but accessors must not underflow first).
    pub fn out_size(&self) -> usize {
        (self.size + 1).saturating_sub(self.kernel)
    }

    /// Rows of the Toeplitz matrix (`in_channels · kernel²`).
    pub fn toeplitz_rows(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// The priced twin: the layer's im2col GEMM shape.
    pub fn workload(&self) -> GemmWorkload {
        GemmWorkload {
            m: (self.out_size() * self.out_size()) as u64,
            k: self.toeplitz_rows() as u64,
            n: self.out_channels as u64,
            input_bits: 4,
            weight_bits: 4,
        }
    }

    /// Deterministic layer weights (magnitudes ≤ 2) and biases.
    pub fn conv_weights(&self) -> ConvWeights {
        let n = self.out_channels * self.in_channels * self.kernel * self.kernel;
        let weights: Vec<i32> = (0..n)
            .map(|i| (((i as i64 * 3 + self.seed as i64) % 5) - 2) as i32)
            .collect();
        let bias: Vec<i32> = (0..self.out_channels)
            .map(|co| (((co as i64 * 7 + self.seed as i64) % 5) - 2) as i32)
            .collect();
        ConvWeights::new(
            self.out_channels,
            self.in_channels,
            self.kernel,
            weights,
            bias,
        )
        .expect("shape is consistent by construction")
    }

    /// Deterministic input activations (magnitudes ≤ 3).
    pub fn input(&self) -> Tensor3 {
        let n = self.in_channels * self.size * self.size;
        Tensor3::from_data(
            self.in_channels,
            self.size,
            self.size,
            (0..n)
                .map(|i| (((i as i64 * 5 + self.seed as i64) % 7) - 3) as i32)
                .collect(),
        )
        .expect("shape is consistent by construction")
    }

    /// The Toeplitz weight matrix: row = im2col position, column =
    /// output channel.
    fn toeplitz_matrix(&self, w: &ConvWeights) -> Vec<Vec<i64>> {
        (0..self.in_channels)
            .flat_map(|ci| {
                (0..self.kernel).flat_map(move |ky| (0..self.kernel).map(move |kx| (ci, ky, kx)))
            })
            .map(|(ci, ky, kx)| {
                (0..self.out_channels)
                    .map(|co| i64::from(w.weight(co, ci, ky, kx)))
                    .collect()
            })
            .collect()
    }

    /// Each output pixel's im2col patch, in readback (row-major pixel)
    /// order — the per-request payloads for
    /// [`CompiledKernel::input_program`].
    pub fn input_cells(&self, input: &Tensor3) -> Vec<Vec<i64>> {
        self.patches(input)
    }

    fn patches(&self, input: &Tensor3) -> Vec<Vec<i64>> {
        let out = self.out_size();
        (0..out)
            .flat_map(|oy| {
                (0..out)
                    .map(|ox| {
                        im2col_row(input, self.kernel, 1, 0, oy, ox)
                            .iter()
                            .map(|&x| i64::from(x))
                            .collect()
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// The tile geometry the compiled program targets.
    pub fn tile_config() -> HctConfig {
        HctConfig {
            functional_pipelines: 2,
            functional_depth: CONV_DEPTH,
            functional_elements: 64,
            functional_vrs: 40,
            functional_ace_arrays: 2,
            ..HctConfig::small_test()
        }
    }

    fn validate(&self) -> darth_pum::Result<()> {
        if self.kernel == 0 || self.kernel > self.size {
            return Err(darth_pum::Error::Shape(
                "kernel must be nonzero and fit the input".into(),
            ));
        }
        let pixels = self.out_size() * self.out_size();
        if pixels > CONV_MAX_PIXELS || self.toeplitz_rows() > 64 || self.out_channels > 64 {
            return Err(darth_pum::Error::Shape(format!(
                "conv {}x{}x{} k{} exceeds the single-array job shape",
                self.in_channels, self.size, self.out_channels, self.kernel
            )));
        }
        Ok(())
    }

    /// Builds the layer as a kernel IR: the Toeplitz matrix as one
    /// vACore, the bias as a landing-pipe constant, pixel `p`'s
    /// receptive field as input slot `patch-{p}`, and per pixel an
    /// analog MVM folded into a parked result register by a bias `add`.
    pub fn build_ir(&self) -> KernelIr {
        let w = self.conv_weights();
        let mut b = KirBuilder::new(self.exec_name(), ConvExec::tile_config());
        let toeplitz = b.vacore(self.toeplitz_matrix(&w), 4, 2, 4, true);
        let bias_cells: Vec<(u8, i64)> = (0..self.out_channels)
            .map(|co| (co as u8, i64::from(w.bias(co))))
            .collect();
        let bias = b.const_s(P_CONV_LAND, "bias", &bias_cells);
        let patches: Vec<darth_kir::Value> = self
            .patches(&self.input())
            .iter()
            .enumerate()
            .map(|(p, patch)| b.input(P_CONV_IN, format!("patch-{p}"), true, patch))
            .collect();
        let out = self.out_size();
        for (p, &patch) in patches.iter().enumerate() {
            let dst = b.slot(P_CONV_LAND, format!("out-{p}"));
            let acc = b.mvm(toeplitz, patch, P_CONV_LAND);
            b.add_into(dst, acc, bias);
            b.readback(
                format!("pixel-{}-{}", p / out.max(1), p % out.max(1)),
                dst,
                self.out_channels,
                true,
            );
        }
        b.finish()
    }

    /// Compiles the kernel through the `darth_kir` pipeline.
    ///
    /// # Errors
    ///
    /// Returns shape errors for oversized layers and compiler
    /// diagnostics.
    pub fn compiled(&self) -> darth_pum::Result<CompiledKernel> {
        self.validate()?;
        Ok(self.build_ir().compile()?)
    }

    /// The split form for serving: the weight/bias setup is resident,
    /// every per-request patch load lives in the input section, and the
    /// body is pure compute (one MVM+bias pair per pixel, then `halt`).
    ///
    /// # Errors
    ///
    /// Returns shape errors for oversized layers and compiler
    /// diagnostics.
    pub fn split_job(&self) -> darth_pum::Result<SplitJob> {
        Ok(self.compiled()?.into_split_job())
    }

    /// The encoded per-request input section: each output pixel's im2col
    /// patch as `wimm`s into its parked input register. Halt-free. The
    /// input tensor must match the layer's `in_channels × size × size`.
    ///
    /// # Errors
    ///
    /// Returns shape errors on an input shape mismatch and range errors
    /// for values outside the 16-bit two's-complement field.
    pub fn input_program(&self, input: &Tensor3) -> darth_pum::Result<Vec<u8>> {
        if input.channels() != self.in_channels
            || input.height() != self.size
            || input.width() != self.size
        {
            return Err(darth_pum::Error::Shape(format!(
                "input must be {}x{}x{}",
                self.in_channels, self.size, self.size
            )));
        }
        self.compiled()?
            .input_program(&self.patches(input))
            .map_err(darth_pum::Error::from)
    }

    /// Deterministic per-request input activations (magnitudes ≤ 2 —
    /// tighter than [`ConvExec::input`] so accumulators stay clamp-free
    /// even for the larger serving shapes).
    pub fn synth_input(&self, request_seed: u64) -> Tensor3 {
        let n = self.in_channels * self.size * self.size;
        let s = request_seed as i64;
        Tensor3::from_data(
            self.in_channels,
            self.size,
            self.size,
            (0..n)
                .map(|i| (((i as i64 * 5 + s) % 5) - 2) as i32)
                .collect(),
        )
        .expect("shape is consistent by construction")
    }

    /// Golden outputs for an arbitrary input tensor under this layer's
    /// weights (shape-matched to the job's readbacks).
    ///
    /// # Errors
    ///
    /// Returns shape errors from the reference convolution.
    pub fn golden_for(&self, input: &Tensor3) -> darth_pum::Result<Vec<ExecOutput>> {
        let reference = conv2d(input, &self.conv_weights(), 1, 0, 0)
            .map_err(|e| darth_pum::Error::Shape(e.to_string()))?;
        let out = self.out_size();
        Ok((0..out)
            .flat_map(|oy| {
                (0..out)
                    .map(|ox| ExecOutput {
                        label: format!("pixel-{oy}-{ox}"),
                        cells: (0..self.out_channels)
                            .map(|co| i64::from(reference.get(co, oy, ox)))
                            .collect(),
                    })
                    .collect::<Vec<_>>()
            })
            .collect())
    }
}

impl Executable for ConvExec {
    fn exec_name(&self) -> String {
        format!(
            "conv-{}x{}x{}-k{}",
            self.in_channels, self.size, self.out_channels, self.kernel
        )
    }

    fn job(&self) -> darth_pum::Result<ExecJob> {
        Ok(self.compiled()?.exec_job())
    }

    fn golden(&self) -> darth_pum::Result<Vec<ExecOutput>> {
        self.golden_for(&self.input())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::execute_job;

    #[test]
    fn compiled_conv_matches_conv2d_reference() {
        let exec = ConvExec::standard();
        let job = exec.job().expect("compiles");
        let golden = exec.golden().expect("golden");
        assert_eq!(execute_job(&job), golden);
    }

    #[test]
    fn accumulators_stay_inside_the_activation_range() {
        // The golden comparison is only exact when conv2d's clamp is a
        // no-op; the synthesized data must guarantee that.
        let exec = ConvExec::standard();
        for out in exec.golden().expect("golden") {
            for &cell in &out.cells {
                assert!((-128..=127).contains(&cell), "cell {cell} would clamp");
            }
        }
    }

    #[test]
    fn split_conv_serves_arbitrary_inputs_bit_exact() {
        let exec = ConvExec::standard();
        let split = exec.split_job().expect("splits");
        split.check_invariants().expect("invariants hold");
        for request_seed in [0u64, 7, 23] {
            let input = exec.synth_input(request_seed);
            let stub = exec.input_program(&input).expect("encodes");
            let full = split.full_job(&stub);
            let golden = exec.golden_for(&input).expect("golden");
            assert_eq!(execute_job(&full), golden, "seed {request_seed}");
        }
        // Shape mismatches are rejected at encode time.
        let wrong = Tensor3::zeros(1, exec.size, exec.size).expect("builds");
        assert!(exec.input_program(&wrong).is_err());
    }

    #[test]
    fn oversized_conv_exec_is_rejected() {
        let mut exec = ConvExec::standard();
        exec.size = 7; // 5x5 = 25 output pixels
        assert!(exec.job().is_err());
        let mut exec = ConvExec::standard();
        exec.kernel = 5;
        assert!(exec.job().is_err());
        // Accessors on the invalid point must not underflow either.
        assert_eq!(exec.out_size(), 0);
        assert_eq!(exec.workload().m, 0);
    }

    #[test]
    fn priced_twin_matches_the_toeplitz_shape() {
        let exec = ConvExec::standard();
        let w = exec.workload();
        assert_eq!(w.k, 18);
        assert_eq!(w.n, 3);
        assert_eq!(w.m, 4);
    }
}
