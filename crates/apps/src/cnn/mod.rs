//! ResNet-20 CNN inference (§5.1): fixed-point tensor substrate, the
//! parameterizable network with Figure 15 layer naming, synthetic
//! data/training, and the workload trace.

pub mod data;
pub mod program;
pub mod resnet;
pub mod tensor;
pub mod workload;

pub use program::ConvExec;
pub use resnet::{AnalogNoise, ResNet};
