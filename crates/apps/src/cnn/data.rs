//! Synthetic image dataset and classifier trainer.
//!
//! The paper evaluates ResNet-20 on CIFAR-10 with trained weights; neither
//! is available offline, so (per DESIGN.md's substitution table) we build
//! the closest synthetic equivalent: a deterministic 10-class dataset of
//! class-prototype images plus noise, and a logistic-regression trainer
//! for the network's classifier over its frozen random convolutional
//! features. The §7.5 experiment — noisy-analog accuracy matches
//! digital-exact accuracy — only needs *that comparison*, which this setup
//! preserves.

use super::resnet::{AnalogNoise, ResNet};
use super::tensor::Tensor3;
use crate::Result;
use darth_reram::NoiseRng;

/// A labelled synthetic dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    images: Vec<Tensor3>,
    labels: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Generates `count` images of `size`×`size`×3 across `classes`
    /// classes: per-class smooth prototypes plus pixel noise.
    ///
    /// # Errors
    ///
    /// Propagates tensor construction errors.
    pub fn synthetic(count: usize, size: usize, classes: usize, seed: u64) -> Result<Dataset> {
        let mut rng = NoiseRng::seed_from(seed);
        // Class prototypes: low-frequency patterns, distinct per class.
        let prototypes: Vec<Vec<i32>> = (0..classes)
            .map(|class| {
                let fx = 1.0 + (class % 3) as f64;
                let fy = 1.0 + (class / 3) as f64;
                let phase = class as f64 * 0.7;
                (0..3 * size * size)
                    .map(|i| {
                        let c = i / (size * size);
                        let y = (i / size) % size;
                        let x = i % size;
                        let v = ((x as f64 * fx / size as f64 * std::f64::consts::TAU
                            + phase
                            + c as f64)
                            .sin()
                            + (y as f64 * fy / size as f64 * std::f64::consts::TAU + phase).cos())
                            * 40.0;
                        v as i32
                    })
                    .collect()
            })
            .collect();
        let mut images = Vec::with_capacity(count);
        let mut labels = Vec::with_capacity(count);
        for i in 0..count {
            let label = i % classes;
            let data: Vec<i32> = prototypes[label]
                .iter()
                .map(|&p| (p + rng.gaussian(0.0, 20.0).round() as i32).clamp(-128, 127))
                .collect();
            images.push(Tensor3::from_data(3, size, size, data)?);
            labels.push(label);
        }
        Ok(Dataset {
            images,
            labels,
            classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Iterates `(image, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Tensor3, usize)> {
        self.images.iter().zip(self.labels.iter().copied())
    }

    /// Splits into train and test halves (interleaved to keep class
    /// balance).
    pub fn split(&self, train_fraction: f64) -> (Dataset, Dataset) {
        // every `test_stride`-th sample goes to the test set
        let test_fraction = (1.0 - train_fraction).clamp(0.05, 0.95);
        let test_stride = (1.0 / test_fraction).round().max(2.0) as usize;
        let mut train = Dataset {
            images: Vec::new(),
            labels: Vec::new(),
            classes: self.classes,
        };
        let mut test = Dataset {
            images: Vec::new(),
            labels: Vec::new(),
            classes: self.classes,
        };
        for (i, (img, label)) in self.iter().enumerate() {
            if i % test_stride == test_stride - 1 {
                test.images.push(img.clone());
                test.labels.push(label);
            } else {
                train.images.push(img.clone());
                train.labels.push(label);
            }
        }
        (train, test)
    }
}

/// Trains the network's classifier with softmax regression over its frozen
/// features, returning the training-set accuracy.
///
/// # Errors
///
/// Propagates forward-pass errors.
pub fn train_classifier(
    net: &mut ResNet,
    train: &Dataset,
    epochs: usize,
    seed: u64,
) -> Result<f64> {
    let mut rng = NoiseRng::seed_from(seed);
    let feat_dim = net.feature_dim();
    let classes = net.classes();
    // Extract features once (digital-exact path).
    let features: Vec<Vec<i32>> = train
        .iter()
        .map(|(img, _)| net.features(img, &AnalogNoise::none(), &mut rng))
        .collect::<Result<_>>()?;
    let labels: Vec<usize> = train.iter().map(|(_, l)| l).collect();

    // Float softmax regression, then quantize the weights back to int.
    let mut w = vec![vec![0f64; feat_dim]; classes];
    let mut b = vec![0f64; classes];
    let lr = 0.05;
    for _epoch in 0..epochs {
        for (x, &label) in features.iter().zip(&labels) {
            let xf: Vec<f64> = x.iter().map(|&v| f64::from(v) / 128.0).collect();
            let logits: Vec<f64> = w
                .iter()
                .zip(&b)
                .map(|(row, &bias)| row.iter().zip(&xf).map(|(wi, xi)| wi * xi).sum::<f64>() + bias)
                .collect();
            let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
            let sum: f64 = exps.iter().sum();
            for c in 0..classes {
                let p = exps[c] / sum;
                let grad = p - if c == label { 1.0 } else { 0.0 };
                for (wi, xi) in w[c].iter_mut().zip(&xf) {
                    *wi -= lr * grad * xi;
                }
                b[c] -= lr * grad;
            }
        }
    }
    // Quantize into the network.
    let scale = 32.0
        / w.iter()
            .flat_map(|row| row.iter().map(|v| v.abs()))
            .fold(1e-9, f64::max);
    let wq: Vec<Vec<i32>> = w
        .iter()
        .map(|row| row.iter().map(|&v| (v * scale).round() as i32).collect())
        .collect();
    let bq: Vec<i32> = b
        .iter()
        .map(|&v| (v * scale * 128.0).round() as i32)
        .collect();
    net.set_classifier(wq, bq)?;

    evaluate(net, train, &AnalogNoise::none(), seed)
}

/// Evaluates classification accuracy under a noise model.
///
/// # Errors
///
/// Propagates forward-pass errors.
pub fn evaluate(net: &ResNet, data: &Dataset, noise: &AnalogNoise, seed: u64) -> Result<f64> {
    let mut rng = NoiseRng::seed_from(seed);
    let mut correct = 0usize;
    for (img, label) in data.iter() {
        if net.predict(img, noise, &mut rng)? == label {
            correct += 1;
        }
    }
    Ok(correct as f64 / data.len().max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_deterministic_and_balanced() {
        let a = Dataset::synthetic(20, 8, 10, 42).expect("builds");
        let b = Dataset::synthetic(20, 8, 10, 42).expect("builds");
        assert_eq!(a.len(), 20);
        assert_eq!(a.classes(), 10);
        let labels_a: Vec<usize> = a.iter().map(|(_, l)| l).collect();
        let labels_b: Vec<usize> = b.iter().map(|(_, l)| l).collect();
        assert_eq!(labels_a, labels_b);
        // two images per class
        for c in 0..10 {
            assert_eq!(labels_a.iter().filter(|&&l| l == c).count(), 2);
        }
    }

    #[test]
    fn split_partitions() {
        let d = Dataset::synthetic(40, 8, 10, 1).expect("builds");
        let (train, test) = d.split(0.75);
        assert_eq!(train.len() + test.len(), 40);
        assert!(train.len() > test.len());
    }

    #[test]
    fn training_beats_chance_on_mini() {
        // 10-class chance is 10%; a trained linear probe over random conv
        // features on smooth prototypes should do much better.
        let mut net = ResNet::mini(3).expect("builds");
        let data = Dataset::synthetic(60, 8, 10, 7).expect("builds");
        let (train, test) = data.split(0.7);
        let train_acc = train_classifier(&mut net, &train, 60, 11).expect("trains");
        assert!(train_acc > 0.4, "train accuracy {train_acc} vs 0.1 chance");
        let test_acc = evaluate(&net, &test, &AnalogNoise::none(), 13).expect("evaluates");
        assert!(test_acc > 0.25, "test accuracy {test_acc} vs 0.1 chance");
    }

    #[test]
    fn noisy_accuracy_close_to_clean() {
        // The §7.5 shape: analog noise does not collapse accuracy.
        let mut net = ResNet::mini(5).expect("builds");
        let data = Dataset::synthetic(40, 8, 10, 9).expect("builds");
        let (train, test) = data.split(0.7);
        train_classifier(&mut net, &train, 30, 17).expect("trains");
        let clean = evaluate(&net, &test, &AnalogNoise::none(), 19).expect("evaluates");
        let noisy = evaluate(&net, &test, &AnalogNoise::evaluation(), 19).expect("evaluates");
        assert!(
            noisy >= clean - 0.3,
            "noise collapsed accuracy: clean {clean}, noisy {noisy}"
        );
    }
}
