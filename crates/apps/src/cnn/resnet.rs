//! ResNet-20 for 32×32 images (He et al., the CIFAR-10 variant the paper
//! evaluates), fully integer.
//!
//! Architecture: a 3×3 stem (`c1-Conv1`), three stages of three basic
//! blocks (16/32/64 channels; stages 2 and 3 downsample with stride 2 and
//! a 1×1 projection shortcut — Figure 15's `r2-ds` / `r3-ds`), global
//! average pooling, and a 10-way classifier (`Seq-b4-Seq`). Layer names
//! match Figure 15 exactly so the per-layer speedup table reads directly
//! off this model.
//!
//! The model is parameterizable (input size, width) so unit tests run a
//! miniature variant while benches run the full network, and it supports
//! an analog-noise forward pass for the §7.5 accuracy experiment.

use super::tensor::{conv2d, fully_connected, global_avg_pool, ConvWeights, Tensor3};
use crate::{Error, Result};
use darth_reram::NoiseRng;

/// Per-conv requantization shift — keeps activations in 8-bit range with
/// the synthetic weight scale below.
const CONV_SHIFT: u32 = 7;

/// A conv layer with its Figure 15 name.
#[derive(Debug, Clone)]
pub struct ConvLayer {
    /// Figure 15 layer name (e.g. `r2-b0-Conv1`).
    pub name: String,
    /// The weights.
    pub weights: ConvWeights,
    /// Stride.
    pub stride: usize,
    /// Padding.
    pub pad: usize,
}

impl ConvLayer {
    /// Output spatial size for a given input size.
    pub fn out_size(&self, in_size: usize) -> usize {
        (in_size + 2 * self.pad - self.weights.kernel()) / self.stride + 1
    }
}

/// Additive analog noise model for the §7.5 experiment: each conv output
/// accumulator receives Gaussian noise whose deviation scales with the
/// square root of the layer's fan-in (independent per-device errors add in
/// variance), quantized at the ADC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalogNoise {
    /// Per-device relative error (programming + read, in weight units).
    pub sigma_per_device: f64,
    /// ADC least significant bit in accumulator units (0 disables
    /// quantization).
    pub adc_lsb: f64,
}

impl AnalogNoise {
    /// The evaluation noise level: residual error at the *activation*
    /// scale after the §7.5 mitigations the paper incorporates (input
    /// bit-slicing, differential pairs, parasitic compensation). The
    /// per-device programming error largely cancels across a bitline and
    /// the compensation removes the systematic component, leaving a
    /// fraction of one activation LSB.
    pub fn evaluation() -> Self {
        AnalogNoise {
            sigma_per_device: 0.02,
            adc_lsb: 1.0,
        }
    }

    /// Raw, uncompensated noise (the ablation showing why §4.3 matters).
    pub fn uncompensated() -> Self {
        AnalogNoise {
            sigma_per_device: 0.6,
            adc_lsb: 1.0,
        }
    }

    /// No noise (digital reference).
    pub fn none() -> Self {
        AnalogNoise {
            sigma_per_device: 0.0,
            adc_lsb: 0.0,
        }
    }

    fn perturb(&self, acc: i64, fan_in: usize, rng: &mut NoiseRng) -> i64 {
        let mut v = acc as f64;
        if self.sigma_per_device > 0.0 {
            v += rng.gaussian(0.0, self.sigma_per_device * (fan_in as f64).sqrt());
        }
        if self.adc_lsb > 0.0 {
            v = (v / self.adc_lsb).round() * self.adc_lsb;
        }
        v.round() as i64
    }
}

/// The network.
#[derive(Debug, Clone)]
pub struct ResNet {
    input_size: usize,
    stem: ConvLayer,
    blocks: Vec<Block>,
    fc_weights: Vec<Vec<i32>>,
    fc_bias: Vec<i32>,
    classes: usize,
}

/// One basic block, with an optional projection shortcut.
#[derive(Debug, Clone)]
struct Block {
    conv1: ConvLayer,
    conv2: ConvLayer,
    downsample: Option<ConvLayer>,
}

fn synth_weights(
    rng: &mut NoiseRng,
    out_ch: usize,
    in_ch: usize,
    kernel: usize,
) -> Result<ConvWeights> {
    // He-style fan-in scaling in fixed point: the requantizing shift
    // divides by 2^CONV_SHIFT, so a weight deviation of
    // sqrt(2) * 2^CONV_SHIFT / sqrt(fan_in) keeps activation variance
    // roughly constant through ReLU layers.
    let fan_in = (in_ch * kernel * kernel) as f64;
    let sigma = std::f64::consts::SQRT_2 * f64::from(1u32 << CONV_SHIFT) / fan_in.sqrt();
    let count = out_ch * in_ch * kernel * kernel;
    let weights: Vec<i32> = (0..count)
        .map(|_| (rng.gaussian(0.0, sigma).round() as i32).clamp(-63, 63))
        .collect();
    let bias: Vec<i32> = (0..out_ch)
        .map(|_| (rng.gaussian(0.0, 2.0).round() as i32).clamp(-8, 8))
        .collect();
    ConvWeights::new(out_ch, in_ch, kernel, weights, bias)
}

impl ResNet {
    /// Builds ResNet-20 for 32×32×3 inputs with 16/32/64 channels — the
    /// paper's configuration.
    ///
    /// # Errors
    ///
    /// Propagates weight-shape errors (none for valid parameters).
    pub fn resnet20(seed: u64) -> Result<Self> {
        ResNet::new(32, 16, 3, 10, seed)
    }

    /// Builds a CIFAR-style ResNet of depth `6·blocks_per_stage + 2` for
    /// 32×32×3 inputs (`blocks_per_stage` = 3 → ResNet-20, 5 → ResNet-32,
    /// 9 → ResNet-56, …) — the classic depth sweep.
    ///
    /// # Errors
    ///
    /// Returns an error when `blocks_per_stage` is zero.
    pub fn cifar(blocks_per_stage: usize, seed: u64) -> Result<Self> {
        ResNet::with_depth(32, 16, 3, 10, blocks_per_stage, seed)
    }

    /// A miniature variant for fast tests: 8×8 inputs, 4/8/16 channels.
    ///
    /// # Errors
    ///
    /// Propagates weight-shape errors.
    pub fn mini(seed: u64) -> Result<Self> {
        ResNet::new(8, 4, 3, 10, seed)
    }

    /// Builds a ResNet-20-topology network with `base_width` channels in
    /// stage 1 (doubling per stage), `in_channels` image channels and
    /// `classes` outputs, with deterministic synthetic weights from
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Returns an error for degenerate parameters.
    pub fn new(
        input_size: usize,
        base_width: usize,
        in_channels: usize,
        classes: usize,
        seed: u64,
    ) -> Result<Self> {
        ResNet::with_depth(input_size, base_width, in_channels, classes, 3, seed)
    }

    /// Like [`ResNet::new`] with an explicit residual-block count per
    /// stage (depth `6·blocks_per_stage + 2`).
    ///
    /// # Errors
    ///
    /// Returns an error for degenerate parameters.
    pub fn with_depth(
        input_size: usize,
        base_width: usize,
        in_channels: usize,
        classes: usize,
        blocks_per_stage: usize,
        seed: u64,
    ) -> Result<Self> {
        if input_size < 8 || base_width == 0 || classes == 0 {
            return Err(Error::Mapping(
                "input size must be >= 8 with nonzero width/classes".into(),
            ));
        }
        if blocks_per_stage == 0 {
            return Err(Error::Mapping(
                "a residual stage needs at least one block".into(),
            ));
        }
        let mut rng = NoiseRng::seed_from(seed);
        let stem = ConvLayer {
            name: "c1-Conv1".to_owned(),
            weights: synth_weights(&mut rng, base_width, in_channels, 3)?,
            stride: 1,
            pad: 1,
        };
        let mut blocks = Vec::new();
        let widths = [base_width, base_width * 2, base_width * 4];
        let mut in_ch = base_width;
        for (stage, &width) in widths.iter().enumerate() {
            for b in 0..blocks_per_stage {
                let first_of_stage = b == 0;
                let stride = if stage > 0 && first_of_stage { 2 } else { 1 };
                let conv1 = ConvLayer {
                    name: format!("r{}-b{}-Conv1", stage + 1, b),
                    weights: synth_weights(&mut rng, width, in_ch, 3)?,
                    stride,
                    pad: 1,
                };
                let conv2 = ConvLayer {
                    name: format!("r{}-b{}-Conv2", stage + 1, b),
                    weights: synth_weights(&mut rng, width, width, 3)?,
                    stride: 1,
                    pad: 1,
                };
                let downsample = if stride != 1 || in_ch != width {
                    Some(ConvLayer {
                        name: format!("r{}-ds", stage + 1),
                        weights: synth_weights(&mut rng, width, in_ch, 1)?,
                        stride,
                        pad: 0,
                    })
                } else {
                    None
                };
                blocks.push(Block {
                    conv1,
                    conv2,
                    downsample,
                });
                in_ch = width;
            }
        }
        let feat = widths[2];
        let fc_weights: Vec<Vec<i32>> = (0..classes)
            .map(|_| {
                (0..feat)
                    .map(|_| (rng.gaussian(0.0, 8.0).round() as i32).clamp(-32, 32))
                    .collect()
            })
            .collect();
        let fc_bias: Vec<i32> = (0..classes).map(|_| 0).collect();
        Ok(ResNet {
            input_size,
            stem,
            blocks,
            fc_weights,
            fc_bias,
            classes,
        })
    }

    /// Expected input spatial size.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Canonical network depth: stem + two convs per residual block + the
    /// classifier (downsample convs are not counted, per the ResNet
    /// naming convention) — 20 for [`ResNet::resnet20`].
    pub fn depth(&self) -> usize {
        2 + 2 * self.blocks.len()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The feature dimension entering the classifier.
    pub fn feature_dim(&self) -> usize {
        self.fc_weights.first().map_or(0, Vec::len)
    }

    /// Replaces the classifier weights (the synthetic trainer's job).
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn set_classifier(&mut self, weights: Vec<Vec<i32>>, bias: Vec<i32>) -> Result<()> {
        if weights.len() != self.classes || bias.len() != self.classes {
            return Err(Error::Mapping("classifier shape mismatch".into()));
        }
        let feat = self.feature_dim();
        if weights.iter().any(|row| row.len() != feat) {
            return Err(Error::Mapping("classifier feature dim mismatch".into()));
        }
        self.fc_weights = weights;
        self.fc_bias = bias;
        Ok(())
    }

    /// All conv layers in execution order, with the classifier name last —
    /// Figure 15's 22 rows.
    pub fn layer_names(&self) -> Vec<String> {
        let mut names = vec![self.stem.name.clone()];
        for block in &self.blocks {
            names.push(block.conv1.name.clone());
            names.push(block.conv2.name.clone());
            if let Some(ds) = &block.downsample {
                names.push(ds.name.clone());
            }
        }
        names.push("Seq-b4-Seq".to_owned());
        names
    }

    /// Conv layers with their input spatial size (drives the workload
    /// trace).
    pub fn conv_plan(&self) -> Vec<(ConvLayer, usize)> {
        let mut plan = Vec::new();
        let mut size = self.input_size;
        plan.push((self.stem.clone(), size));
        for block in &self.blocks {
            let in_size = size;
            plan.push((block.conv1.clone(), in_size));
            let mid = block.conv1.out_size(in_size);
            plan.push((block.conv2.clone(), mid));
            if let Some(ds) = &block.downsample {
                plan.push((ds.clone(), in_size));
            }
            size = mid;
        }
        plan
    }

    /// The penultimate feature vector (global-pooled), optionally under
    /// analog noise.
    ///
    /// # Errors
    ///
    /// Propagates shape errors (none for a well-formed network).
    pub fn features(
        &self,
        image: &Tensor3,
        noise: &AnalogNoise,
        rng: &mut NoiseRng,
    ) -> Result<Vec<i32>> {
        if image.height() != self.input_size || image.width() != self.input_size {
            return Err(Error::Mapping(format!(
                "expected {0}x{0} input, got {1}x{2}",
                self.input_size,
                image.height(),
                image.width()
            )));
        }
        let mut x = self.conv_forward(&self.stem, image, noise, rng)?;
        x.relu();
        for block in &self.blocks {
            let identity = if let Some(ds) = &block.downsample {
                self.conv_forward(ds, &x, noise, rng)?
            } else {
                x.clone()
            };
            let mut y = self.conv_forward(&block.conv1, &x, noise, rng)?;
            y.relu();
            let mut y = self.conv_forward(&block.conv2, &y, noise, rng)?;
            y.add(&identity)?;
            y.clamp_activation();
            y.relu();
            x = y;
        }
        Ok(global_avg_pool(&x))
    }

    /// Full inference: logits for one image.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn logits(
        &self,
        image: &Tensor3,
        noise: &AnalogNoise,
        rng: &mut NoiseRng,
    ) -> Result<Vec<i64>> {
        let features = self.features(image, noise, rng)?;
        fully_connected(&features, &self.fc_weights, &self.fc_bias)
    }

    /// Predicted class for one image.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn predict(
        &self,
        image: &Tensor3,
        noise: &AnalogNoise,
        rng: &mut NoiseRng,
    ) -> Result<usize> {
        let logits = self.logits(image, noise, rng)?;
        Ok(logits
            .iter()
            .enumerate()
            .max_by_key(|&(_, v)| *v)
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    fn conv_forward(
        &self,
        layer: &ConvLayer,
        input: &Tensor3,
        noise: &AnalogNoise,
        rng: &mut NoiseRng,
    ) -> Result<Tensor3> {
        let mut out = conv2d(input, &layer.weights, layer.stride, layer.pad, CONV_SHIFT)?;
        if noise.sigma_per_device > 0.0 || noise.adc_lsb > 0.0 {
            let (fan_in, _) = layer.weights.mvm_shape();
            for c in 0..out.channels() {
                for y in 0..out.height() {
                    for x in 0..out.width() {
                        let clean = i64::from(out.get(c, y, x));
                        let noisy = noise.perturb(clean, fan_in, rng);
                        out.set(
                            c,
                            y,
                            x,
                            (noisy as i32).clamp(super::tensor::ACT_MIN, super::tensor::ACT_MAX),
                        );
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(size: usize, seed: u64) -> Tensor3 {
        let mut rng = NoiseRng::seed_from(seed);
        let data: Vec<i32> = (0..3 * size * size)
            .map(|_| (rng.gaussian(0.0, 30.0).round() as i32).clamp(-128, 127))
            .collect();
        Tensor3::from_data(3, size, size, data).expect("valid")
    }

    #[test]
    fn resnet20_has_figure15_layers() {
        let net = ResNet::resnet20(1).expect("builds");
        let names = net.layer_names();
        assert_eq!(names.len(), 22, "{names:?}");
        assert_eq!(names[0], "c1-Conv1");
        assert!(names.contains(&"r2-ds".to_owned()));
        assert!(names.contains(&"r3-ds".to_owned()));
        assert!(!names.contains(&"r1-ds".to_owned()));
        assert_eq!(names.last().map(String::as_str), Some("Seq-b4-Seq"));
    }

    #[test]
    fn conv_plan_shapes_shrink() {
        let net = ResNet::resnet20(1).expect("builds");
        let plan = net.conv_plan();
        assert_eq!(plan[0].1, 32);
        let last = plan.last().expect("nonempty");
        assert_eq!(last.1, 8); // final stage spatial size
    }

    #[test]
    fn mini_forward_is_deterministic() {
        let net = ResNet::mini(7).expect("builds");
        let img = image(8, 3);
        let mut rng1 = NoiseRng::seed_from(0);
        let mut rng2 = NoiseRng::seed_from(0);
        let a = net
            .logits(&img, &AnalogNoise::none(), &mut rng1)
            .expect("runs");
        let b = net
            .logits(&img, &AnalogNoise::none(), &mut rng2)
            .expect("runs");
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn feature_dim_matches_stage3_width() {
        let net = ResNet::mini(7).expect("builds");
        assert_eq!(net.feature_dim(), 16); // 4 * 4
        let full = ResNet::resnet20(7).expect("builds");
        assert_eq!(full.feature_dim(), 64);
    }

    #[test]
    fn wrong_input_size_is_rejected() {
        let net = ResNet::mini(7).expect("builds");
        let img = image(16, 3);
        assert!(net
            .logits(&img, &AnalogNoise::none(), &mut NoiseRng::seed_from(0))
            .is_err());
    }

    #[test]
    fn noise_perturbs_but_stays_bounded() {
        let net = ResNet::mini(7).expect("builds");
        let img = image(8, 5);
        let mut rng = NoiseRng::seed_from(9);
        let clean = net
            .features(&img, &AnalogNoise::none(), &mut rng)
            .expect("runs");
        let mut rng = NoiseRng::seed_from(9);
        let noisy = net
            .features(&img, &AnalogNoise::evaluation(), &mut rng)
            .expect("runs");
        assert_eq!(clean.len(), noisy.len());
        // perturbed but in the same ballpark
        let diff: i64 = clean
            .iter()
            .zip(&noisy)
            .map(|(&a, &b)| i64::from(a - b).abs())
            .sum();
        assert!(diff > 0, "noise had no effect");
        let magnitude: i64 = clean.iter().map(|&v| i64::from(v).abs()).sum();
        assert!(diff < magnitude.max(100) * 3, "noise overwhelmed signal");
    }

    #[test]
    fn classifier_replacement_validates() {
        let mut net = ResNet::mini(7).expect("builds");
        let feat = net.feature_dim();
        assert!(net
            .set_classifier(vec![vec![0; feat]; 10], vec![0; 10])
            .is_ok());
        assert!(net
            .set_classifier(vec![vec![0; feat]; 9], vec![0; 9])
            .is_err());
        assert!(net
            .set_classifier(vec![vec![0; feat + 1]; 10], vec![0; 10])
            .is_err());
    }

    #[test]
    fn predict_returns_valid_class() {
        let net = ResNet::mini(11).expect("builds");
        let img = image(8, 1);
        let class = net
            .predict(&img, &AnalogNoise::none(), &mut NoiseRng::seed_from(0))
            .expect("runs");
        assert!(class < 10);
    }
}
