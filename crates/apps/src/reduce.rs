//! A PrIM-style vector reduction compiled through the kernel-IR
//! compiler.
//!
//! Reduction is the canonical bandwidth-bound PIM primitive (PrIM's
//! `RED` kernel): every element is touched once and the arithmetic is a
//! single running sum. On DARTH-PUM the whole reduction is one analog
//! MVM against an all-ones column vector — the crossbar's current
//! summing does the addition for free — followed by one DCE `copy` to
//! park the scalar for readback. The module carries both halves of the
//! usual pairing: [`ReduceExec`], a concrete compiled job checked
//! against a software golden sum, and [`ReduceWorkload`], its
//! analytically priced twin for the evaluation matrix.

use darth_kir::{CompiledKernel, KernelIr, KirBuilder};
use darth_pum::eval::{ExecJob, ExecOutput, Executable, SplitJob, Workload};
use darth_pum::hct::HctConfig;
use darth_pum::trace::{KernelOp, Trace, TraceMeta, TraceSink};

/// Pipeline roles of the compiled reduction job.
const P_RED_IN: u16 = 0;
const P_RED_LAND: u16 = 1;
const RED_DEPTH: usize = 16;

/// The analytically priced reduction scenario: sum `n` 8-bit values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceWorkload {
    /// Elements reduced.
    pub n: u64,
}

impl ReduceWorkload {
    /// A size sweep at PrIM-benchmark scales.
    pub fn sweep() -> Vec<ReduceWorkload> {
        [1 << 8, 1 << 12, 1 << 16]
            .into_iter()
            .map(|n| ReduceWorkload { n })
            .collect()
    }

    /// Builds the materialized trace (the collected form of
    /// [`Workload::emit`]).
    pub fn trace(&self) -> Trace {
        self.build_trace()
    }
}

impl Workload for ReduceWorkload {
    fn name(&self) -> String {
        format!("reduce-{}", self.n)
    }

    fn label(&self) -> String {
        format!("Reduce {}", self.n)
    }

    fn params(&self) -> Vec<(String, String)> {
        vec![("n".into(), self.n.to_string())]
    }

    fn emit(&self, sink: &mut dyn TraceSink) {
        sink.begin_trace(
            // A reduction occupies one input pipeline and one landing
            // pipeline; independent reductions tile freely.
            &TraceMeta::new(Workload::name(self))
                .with_pipelines_per_item(2)
                .with_parallel_items(1 << 20),
        );
        sink.begin_kernel("Reduce");
        sink.op(&KernelOp::Mvm {
            rows: self.n,
            cols: 1,
            input_bits: 8,
            weight_bits: 2,
            batch: 1,
        });
    }
}

/// A concrete integer reduction compiled to an ISA job: deterministic
/// 8-bit values summed by one analog MVM against an all-ones column —
/// the differential twin of [`ReduceWorkload`]'s analytical pricing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceExec {
    /// Elements reduced (at most one array, 64).
    pub n: usize,
    /// Data-synthesis seed.
    pub seed: u64,
}

impl ReduceExec {
    /// The standard differential case: a 48-element reduction.
    pub fn standard() -> Self {
        ReduceExec { n: 48, seed: 7 }
    }

    /// The priced twin of this job.
    pub fn workload(&self) -> ReduceWorkload {
        ReduceWorkload { n: self.n as u64 }
    }

    /// Deterministic input values (small signed range; the sum of 64
    /// such values stays well inside the 16-bit field).
    pub fn values(&self) -> Vec<i64> {
        self.synth_values(self.seed)
    }

    /// Deterministic per-request values.
    pub fn synth_values(&self, request_seed: u64) -> Vec<i64> {
        let s = request_seed as i64;
        (0..self.n).map(|i| ((i as i64 * 7 + s) % 17) - 8).collect()
    }

    /// The tile geometry the compiled program targets.
    pub fn tile_config() -> HctConfig {
        HctConfig {
            functional_pipelines: 2,
            functional_depth: RED_DEPTH,
            functional_elements: 64,
            functional_vrs: 40,
            functional_ace_arrays: 2,
            ..HctConfig::small_test()
        }
    }

    fn validate(&self) -> darth_pum::Result<()> {
        if self.n == 0 || self.n > 64 {
            return Err(darth_pum::Error::Shape(format!(
                "reduce length {} must be in 1..=64 (one array)",
                self.n
            )));
        }
        Ok(())
    }

    /// Builds the reduction as a kernel IR: an `n×1` all-ones vACore,
    /// the values as input slot `values`, one MVM, and a `copy` parking
    /// the sum for readback.
    pub fn build_ir(&self) -> KernelIr {
        let mut b = KirBuilder::new(self.exec_name(), ReduceExec::tile_config());
        let ones = b.vacore(vec![vec![1]; self.n], 2, 2, 8, true);
        let values = b.input(P_RED_IN, "values", true, &self.values());
        let sum = b.slot(P_RED_LAND, "sum");
        let acc = b.mvm(ones, values, P_RED_LAND);
        b.mov(sum, acc);
        b.readback("sum", sum, 1, true);
        b.finish()
    }

    /// Compiles the kernel through the `darth_kir` pipeline.
    ///
    /// # Errors
    ///
    /// Returns shape errors for oversized lengths and compiler
    /// diagnostics.
    pub fn compiled(&self) -> darth_pum::Result<CompiledKernel> {
        self.validate()?;
        Ok(self.build_ir().compile()?)
    }

    /// The split form for serving: resident all-ones matrix, per-request
    /// value loads, two-instruction body.
    ///
    /// # Errors
    ///
    /// Returns shape errors for oversized lengths and compiler
    /// diagnostics.
    pub fn split_job(&self) -> darth_pum::Result<SplitJob> {
        Ok(self.compiled()?.into_split_job())
    }

    /// The encoded per-request input section: the `n` values as `wimm`s
    /// into the parked input register. Halt-free.
    ///
    /// # Errors
    ///
    /// Returns shape errors on a length mismatch and range errors for
    /// values outside the 16-bit two's-complement field.
    pub fn input_program(&self, values: &[i64]) -> darth_pum::Result<Vec<u8>> {
        self.compiled()?
            .input_program(&[values.to_vec()])
            .map_err(darth_pum::Error::from)
    }

    /// Golden output for arbitrary values (shape-matched to the job's
    /// readback): the plain sum.
    pub fn golden_for(&self, values: &[i64]) -> Vec<ExecOutput> {
        vec![ExecOutput {
            label: "sum".into(),
            cells: vec![values.iter().sum()],
        }]
    }
}

impl Executable for ReduceExec {
    fn exec_name(&self) -> String {
        Workload::name(&self.workload())
    }

    fn job(&self) -> darth_pum::Result<ExecJob> {
        Ok(self.compiled()?.exec_job())
    }

    fn golden(&self) -> darth_pum::Result<Vec<ExecOutput>> {
        Ok(self.golden_for(&self.values()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::execute_job;

    #[test]
    fn compiled_reduce_matches_the_software_sum() {
        let exec = ReduceExec::standard();
        let job = exec.job().expect("compiles");
        let golden = exec.golden().expect("golden");
        assert_eq!(execute_job(&job), golden);
        // The synthesized case exercises a nontrivial (nonzero) sum.
        assert_ne!(golden[0].cells[0], 0);
    }

    #[test]
    fn split_reduce_serves_arbitrary_values_bit_exact() {
        let exec = ReduceExec::standard();
        let split = exec.split_job().expect("splits");
        split.check_invariants().expect("invariants hold");
        for request_seed in [0u64, 5, 31] {
            let values = exec.synth_values(request_seed);
            let stub = exec.input_program(&values).expect("encodes");
            let full = split.full_job(&stub);
            assert_eq!(
                execute_job(&full),
                exec.golden_for(&values),
                "seed {request_seed}"
            );
        }
        // Length mismatches are rejected at encode time.
        assert!(exec.input_program(&[1, 2, 3]).is_err());
    }

    #[test]
    fn reduce_exec_pairs_with_its_priced_workload() {
        let exec = ReduceExec::standard();
        assert_eq!(exec.exec_name(), "reduce-48");
        assert_eq!(exec.workload().trace().macs(), 48);
    }

    #[test]
    fn oversized_reduce_exec_is_rejected() {
        assert!(ReduceExec { n: 65, seed: 0 }.job().is_err());
        assert!(ReduceExec { n: 0, seed: 0 }.job().is_err());
    }
}
