//! A standalone dense GEMM workload.
//!
//! The three paper applications exercise the chip through fixed kernel
//! mixes; this scenario isolates the analog substrate's bread-and-butter
//! operation — a dense `m×k · k×n` matrix multiply with a vector epilogue
//! (bias + requantize) — so the evaluation matrix can sweep arbitrary
//! shapes and operand widths without inventing an application around
//! them. The MVM convention matches [`darth_pum::trace::KernelOp::Mvm`]:
//! `rows = k` (input length), `cols = n` (output length), one batch entry
//! per left-hand-side row.

use darth_kir::{CompiledKernel, KernelIr, KirBuilder};
use darth_pum::eval::{ExecJob, ExecOutput, Executable, SplitJob, Workload};
use darth_pum::hct::HctConfig;
use darth_pum::trace::{KernelOp, Trace, TraceMeta, TraceSink, VectorKind};

/// A dense GEMM scenario: `C[m×n] = A[m×k] · B[k×n]`, plus a bias-add and
/// requantizing shift over the output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmWorkload {
    /// Left-hand-side rows (output rows; the MVM batch).
    pub m: u64,
    /// Inner (contraction) dimension.
    pub k: u64,
    /// Right-hand-side columns (output columns).
    pub n: u64,
    /// Activation width in bits.
    pub input_bits: u8,
    /// Weight width in bits.
    pub weight_bits: u8,
}

impl GemmWorkload {
    /// A square 8-bit GEMM.
    pub fn square(dim: u64) -> Self {
        GemmWorkload {
            m: dim,
            k: dim,
            n: dim,
            input_bits: 8,
            weight_bits: 8,
        }
    }

    /// A size sweep of square 8-bit GEMMs (transformer-layer scale).
    pub fn sweep() -> Vec<GemmWorkload> {
        [256, 1024, 4096].into_iter().map(Self::square).collect()
    }

    /// Builds the materialized trace (the collected form of
    /// [`Workload::emit`]).
    pub fn trace(&self) -> Trace {
        self.build_trace()
    }
}

impl Workload for GemmWorkload {
    fn name(&self) -> String {
        if self.input_bits == 8 && self.weight_bits == 8 {
            format!("gemm-{}x{}x{}", self.m, self.k, self.n)
        } else {
            format!(
                "gemm-{}x{}x{}-i{}w{}",
                self.m, self.k, self.n, self.input_bits, self.weight_bits
            )
        }
    }

    fn label(&self) -> String {
        format!("GEMM {}×{}×{}", self.m, self.k, self.n)
    }

    fn params(&self) -> Vec<(String, String)> {
        vec![
            ("m".into(), self.m.to_string()),
            ("k".into(), self.k.to_string()),
            ("n".into(), self.n.to_string()),
            ("input_bits".into(), self.input_bits.to_string()),
            ("weight_bits".into(), self.weight_bits.to_string()),
        ]
    }

    fn emit(&self, sink: &mut dyn TraceSink) {
        let outputs = self.m.saturating_mul(self.n);
        sink.begin_trace(
            // One GEMM occupies a landing pipeline per weight slice plus
            // the epilogue pipeline; items beyond the batch are
            // independent.
            &TraceMeta::new(Workload::name(self))
                .with_pipelines_per_item(4)
                .with_parallel_items(1 << 20),
        );
        sink.begin_kernel("GEMM");
        sink.op(&KernelOp::Mvm {
            rows: self.k,
            cols: self.n,
            input_bits: self.input_bits,
            weight_bits: self.weight_bits,
            batch: self.m,
        });
        sink.begin_kernel("Epilogue");
        for kind in [VectorKind::Add, VectorKind::Shift] {
            sink.op(&KernelOp::Vector {
                kind,
                elements: outputs,
                bits: self.input_bits,
                count: 1,
            });
        }
    }
}

/// Pipeline roles of the compiled GEMM job.
const P_GEMM_IN: u16 = 0;
const P_GEMM_LAND: u16 = 1;
const GEMM_DEPTH: usize = 16;
/// Batch rows the job shape supports (one parked input register and one
/// result register per row, clear of the MVM landing cluster).
const GEMM_MAX_M: usize = 8;

/// A concrete integer GEMM compiled to an ISA job: deterministic 4-bit
/// weights and 8-bit activations, `C = A·B + bias`, one analog MVM per
/// left-hand-side row with the bias added by a DCE `add` — the
/// differential twin of [`GemmWorkload`]'s analytical pricing. The
/// program is built as a `darth_kir` kernel IR; register placement is the
/// compiler's problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmExec {
    /// Left-hand-side rows (MVM batch; at most 8).
    pub m: usize,
    /// Contraction dimension (at most one array, 64).
    pub k: usize,
    /// Output columns (at most one array, 64).
    pub n: usize,
    /// Data-synthesis seed.
    pub seed: u64,
}

impl GemmExec {
    /// The standard differential case: a 4×12×10 GEMM.
    pub fn standard() -> Self {
        GemmExec {
            m: 4,
            k: 12,
            n: 10,
            seed: 5,
        }
    }

    /// The priced twin of this job.
    pub fn workload(&self) -> GemmWorkload {
        GemmWorkload {
            m: self.m as u64,
            k: self.k as u64,
            n: self.n as u64,
            input_bits: 8,
            weight_bits: 4,
        }
    }

    /// Deterministic 4-bit weight matrix (`k × n`, magnitudes ≤ 7).
    pub fn weights(&self) -> Vec<Vec<i64>> {
        (0..self.k)
            .map(|r| {
                (0..self.n)
                    .map(|c| ((r as i64 * 31 + c as i64 * 7 + self.seed as i64) % 15) - 7)
                    .collect()
            })
            .collect()
    }

    /// Deterministic activations (`m × k`, 8-bit signed range).
    pub fn activations(&self) -> Vec<Vec<i64>> {
        self.synth_activations(self.seed)
    }

    /// Deterministic per-column bias.
    pub fn bias(&self) -> Vec<i64> {
        (0..self.n)
            .map(|c| ((c as i64 * 11 + self.seed as i64) % 9) - 4)
            .collect()
    }

    /// The tile geometry the compiled program targets.
    pub fn tile_config() -> HctConfig {
        HctConfig {
            functional_pipelines: 2,
            functional_depth: GEMM_DEPTH,
            functional_elements: 64,
            functional_vrs: 40,
            functional_ace_arrays: 2,
            ..HctConfig::small_test()
        }
    }

    fn validate(&self) -> darth_pum::Result<()> {
        if self.m == 0 || self.k == 0 || self.n == 0 {
            return Err(darth_pum::Error::Shape("GEMM dims must be nonzero".into()));
        }
        if self.m > GEMM_MAX_M || self.k > 64 || self.n > 64 {
            return Err(darth_pum::Error::Shape(format!(
                "GEMM {}x{}x{} exceeds the single-array job shape (m ≤ {GEMM_MAX_M}, k/n ≤ 64)",
                self.m, self.k, self.n
            )));
        }
        Ok(())
    }

    /// Builds the GEMM as a kernel IR: the weight matrix as one vACore,
    /// the bias as a landing-pipe constant, row `i`'s activations as
    /// input slot `row-{i}`, and per row an analog MVM folded into a
    /// parked result register by a bias `add`.
    pub fn build_ir(&self) -> KernelIr {
        let mut b = KirBuilder::new(self.exec_name(), GemmExec::tile_config());
        let weights = b.vacore(self.weights(), 4, 2, 8, true);
        let bias_cells: Vec<(u8, i64)> = self
            .bias()
            .iter()
            .enumerate()
            .map(|(e, &v)| (e as u8, v))
            .collect();
        let bias = b.const_s(P_GEMM_LAND, "bias", &bias_cells);
        let rows: Vec<darth_kir::Value> = self
            .activations()
            .iter()
            .enumerate()
            .map(|(i, row)| b.input(P_GEMM_IN, format!("row-{i}"), true, row))
            .collect();
        for (i, &row) in rows.iter().enumerate() {
            let out = b.slot(P_GEMM_LAND, format!("out-{i}"));
            let acc = b.mvm(weights, row, P_GEMM_LAND);
            // Fold the bias in and park the row so the landing cluster is
            // free for the next batch row.
            b.add_into(out, acc, bias);
            b.readback(format!("row-{i}"), out, self.n, true);
        }
        b.finish()
    }

    /// Compiles the kernel through the `darth_kir` pipeline.
    ///
    /// # Errors
    ///
    /// Returns shape errors for oversized dims and compiler diagnostics.
    pub fn compiled(&self) -> darth_pum::Result<CompiledKernel> {
        self.validate()?;
        Ok(self.build_ir().compile()?)
    }

    /// The split form for serving: the weight/bias setup is resident,
    /// every per-request activation load lives in the input section, and
    /// the body is pure compute (`m` MVM+bias pairs, then `halt`).
    ///
    /// # Errors
    ///
    /// Returns shape errors for oversized dims and compiler diagnostics.
    pub fn split_job(&self) -> darth_pum::Result<SplitJob> {
        Ok(self.compiled()?.into_split_job())
    }

    /// The encoded per-request input section: row `i`'s activations as
    /// `wimm`s into its parked input register. Halt-free. The shape must
    /// be `m × k`.
    ///
    /// # Errors
    ///
    /// Returns shape errors on an activation shape mismatch and range
    /// errors for values outside the 16-bit two's-complement field.
    pub fn input_program(&self, activations: &[Vec<i64>]) -> darth_pum::Result<Vec<u8>> {
        self.compiled()?
            .input_program(activations)
            .map_err(darth_pum::Error::from)
    }

    /// Deterministic per-request activations (`m × k`, small signed
    /// range so outputs stay well inside the 16-bit field for any legal
    /// shape).
    pub fn synth_activations(&self, request_seed: u64) -> Vec<Vec<i64>> {
        let s = request_seed as i64;
        (0..self.m)
            .map(|i| {
                (0..self.k)
                    .map(|r| ((i as i64 * 13 + r as i64 * 5 + s) % 21) - 10)
                    .collect()
            })
            .collect()
    }

    /// Golden outputs for arbitrary activations under this job's weights
    /// and bias (shape-matched to the job's readbacks).
    pub fn golden_for(&self, activations: &[Vec<i64>]) -> Vec<ExecOutput> {
        let w = self.weights();
        let bias = self.bias();
        activations
            .iter()
            .enumerate()
            .map(|(i, row)| ExecOutput {
                label: format!("row-{i}"),
                cells: (0..self.n)
                    .map(|c| (0..self.k).map(|r| row[r] * w[r][c]).sum::<i64>() + bias[c])
                    .collect(),
            })
            .collect()
    }
}

impl Executable for GemmExec {
    fn exec_name(&self) -> String {
        Workload::name(&self.workload())
    }

    fn job(&self) -> darth_pum::Result<ExecJob> {
        Ok(self.compiled()?.exec_job())
    }

    fn golden(&self) -> darth_pum::Result<Vec<ExecOutput>> {
        Ok(self.golden_for(&self.activations()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::execute_job;

    #[test]
    fn gemm_trace_counts_macs() {
        let g = GemmWorkload::square(64);
        let t = g.build_trace();
        assert_eq!(t.name, "gemm-64x64x64");
        assert_eq!(t.macs(), 64 * 64 * 64);
        assert_eq!(t.element_ops(), 2 * 64 * 64);
        assert!(t.mvm_fraction() > 0.9);
    }

    #[test]
    fn narrow_operands_get_their_own_name() {
        let mut g = GemmWorkload::square(32);
        g.input_bits = 1;
        g.weight_bits = 1;
        assert_eq!(Workload::name(&g), "gemm-32x32x32-i1w1");
    }

    #[test]
    fn sweep_scales_work() {
        let sweep = GemmWorkload::sweep();
        assert_eq!(sweep.len(), 3);
        let macs: Vec<u64> = sweep.iter().map(|g| g.trace().macs()).collect();
        assert!(macs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn compiled_gemm_matches_golden_on_the_chip() {
        let exec = GemmExec::standard();
        let job = exec.job().expect("compiles");
        let golden = exec.golden().expect("golden");
        assert_eq!(execute_job(&job), golden);
    }

    #[test]
    fn split_gemm_serves_arbitrary_activations_bit_exact() {
        let exec = GemmExec::standard();
        let split = exec.split_job().expect("splits");
        split.check_invariants().expect("invariants hold");
        for request_seed in [0u64, 3, 19] {
            let activations = exec.synth_activations(request_seed);
            let input = exec.input_program(&activations).expect("encodes");
            let full = split.full_job(&input);
            let golden = exec.golden_for(&activations);
            assert_eq!(execute_job(&full), golden, "seed {request_seed}");
        }
        // Shape mismatches are rejected at encode time.
        assert!(exec.input_program(&[vec![0; exec.k]]).is_err());
    }

    #[test]
    fn gemm_exec_pairs_with_its_priced_workload() {
        let exec = GemmExec::standard();
        assert_eq!(exec.exec_name(), Workload::name(&exec.workload()));
        assert_eq!(exec.workload().m, exec.m as u64);
    }

    #[test]
    fn oversized_gemm_exec_is_rejected() {
        let mut exec = GemmExec::standard();
        exec.m = 9;
        assert!(exec.job().is_err());
        let mut exec = GemmExec::standard();
        exec.k = 65;
        assert!(exec.job().is_err());
        let mut exec = GemmExec::standard();
        exec.n = 0;
        assert!(exec.job().is_err());
    }
}
