//! A standalone dense GEMM workload.
//!
//! The three paper applications exercise the chip through fixed kernel
//! mixes; this scenario isolates the analog substrate's bread-and-butter
//! operation — a dense `m×k · k×n` matrix multiply with a vector epilogue
//! (bias + requantize) — so the evaluation matrix can sweep arbitrary
//! shapes and operand widths without inventing an application around
//! them. The MVM convention matches [`darth_pum::trace::KernelOp::Mvm`]:
//! `rows = k` (input length), `cols = n` (output length), one batch entry
//! per left-hand-side row.

use darth_pum::eval::Workload;
use darth_pum::trace::{KernelOp, Trace, TraceMeta, TraceSink, VectorKind};

/// A dense GEMM scenario: `C[m×n] = A[m×k] · B[k×n]`, plus a bias-add and
/// requantizing shift over the output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmWorkload {
    /// Left-hand-side rows (output rows; the MVM batch).
    pub m: u64,
    /// Inner (contraction) dimension.
    pub k: u64,
    /// Right-hand-side columns (output columns).
    pub n: u64,
    /// Activation width in bits.
    pub input_bits: u8,
    /// Weight width in bits.
    pub weight_bits: u8,
}

impl GemmWorkload {
    /// A square 8-bit GEMM.
    pub fn square(dim: u64) -> Self {
        GemmWorkload {
            m: dim,
            k: dim,
            n: dim,
            input_bits: 8,
            weight_bits: 8,
        }
    }

    /// A size sweep of square 8-bit GEMMs (transformer-layer scale).
    pub fn sweep() -> Vec<GemmWorkload> {
        [256, 1024, 4096].into_iter().map(Self::square).collect()
    }

    /// Builds the materialized trace (the collected form of
    /// [`Workload::emit`]).
    pub fn trace(&self) -> Trace {
        self.build_trace()
    }
}

impl Workload for GemmWorkload {
    fn name(&self) -> String {
        if self.input_bits == 8 && self.weight_bits == 8 {
            format!("gemm-{}x{}x{}", self.m, self.k, self.n)
        } else {
            format!(
                "gemm-{}x{}x{}-i{}w{}",
                self.m, self.k, self.n, self.input_bits, self.weight_bits
            )
        }
    }

    fn label(&self) -> String {
        format!("GEMM {}×{}×{}", self.m, self.k, self.n)
    }

    fn params(&self) -> Vec<(String, String)> {
        vec![
            ("m".into(), self.m.to_string()),
            ("k".into(), self.k.to_string()),
            ("n".into(), self.n.to_string()),
            ("input_bits".into(), self.input_bits.to_string()),
            ("weight_bits".into(), self.weight_bits.to_string()),
        ]
    }

    fn emit(&self, sink: &mut dyn TraceSink) {
        let outputs = self.m.saturating_mul(self.n);
        sink.begin_trace(
            // One GEMM occupies a landing pipeline per weight slice plus
            // the epilogue pipeline; items beyond the batch are
            // independent.
            &TraceMeta::new(Workload::name(self))
                .with_pipelines_per_item(4)
                .with_parallel_items(1 << 20),
        );
        sink.begin_kernel("GEMM");
        sink.op(&KernelOp::Mvm {
            rows: self.k,
            cols: self.n,
            input_bits: self.input_bits,
            weight_bits: self.weight_bits,
            batch: self.m,
        });
        sink.begin_kernel("Epilogue");
        for kind in [VectorKind::Add, VectorKind::Shift] {
            sink.op(&KernelOp::Vector {
                kind,
                elements: outputs,
                bits: self.input_bits,
                count: 1,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_trace_counts_macs() {
        let g = GemmWorkload::square(64);
        let t = g.build_trace();
        assert_eq!(t.name, "gemm-64x64x64");
        assert_eq!(t.macs(), 64 * 64 * 64);
        assert_eq!(t.element_ops(), 2 * 64 * 64);
        assert!(t.mvm_fraction() > 0.9);
    }

    #[test]
    fn narrow_operands_get_their_own_name() {
        let mut g = GemmWorkload::square(32);
        g.input_bits = 1;
        g.weight_bits = 1;
        assert_eq!(Workload::name(&g), "gemm-32x32x32-i1w1");
    }

    #[test]
    fn sweep_scales_work() {
        let sweep = GemmWorkload::sweep();
        assert_eq!(sweep.len(), 3);
        let macs: Vec<u64> = sweep.iter().map(|g| g.trace().macs()).collect();
        assert!(macs.windows(2).all(|w| w[0] < w[1]));
    }
}
