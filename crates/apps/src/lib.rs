//! Workloads for the DARTH-PUM reproduction: AES encryption, ResNet-20
//! inference, and an integer (I-BERT-style) LLM encoder.
//!
//! Each application ships three layers:
//!
//! 1. A **golden model** — a plain-Rust reference implementation used as
//!    the correctness oracle (AES is validated against FIPS-197 vectors;
//!    the CNN and encoder are exact integer programs).
//! 2. A **DARTH-PUM mapping** — the kernel-by-kernel placement of Section 5
//!    executed *functionally* on the simulated hybrid compute tile: AES
//!    runs bit-exactly through OSCAR pipelines and the analog MixColumns
//!    crossbar.
//! 3. A **workload trace** — the architecture-neutral
//!    [`darth_pum::trace::Trace`] every cost model prices for
//!    Figures 13–18.
//!
//! Every trace builder is also exposed as a pluggable
//! [`darth_pum::eval::Workload`] scenario ([`aes::workload::AesWorkload`],
//! [`cnn::workload::ResNetWorkload`], [`llm::workload::EncoderWorkload`],
//! and the application-free [`gemm::GemmWorkload`]), each with parameter
//! sweeps beyond the paper's three fixed points; the `darth_eval` engine
//! prices any set of them against any set of architecture models.
//!
//! # Example: AES through the hybrid tile
//!
//! ```
//! use darth_apps::aes::golden::Aes;
//! use darth_apps::aes::mapping::AesDarth;
//!
//! # fn main() -> Result<(), darth_apps::Error> {
//! let key = [0u8; 16];
//! let block = *b"darth-pum block!";
//! let mut hybrid = AesDarth::new_128(&key)?;
//! let golden = Aes::new_128(&key).encrypt_block(&block);
//! assert_eq!(hybrid.encrypt_block(&block)?, golden);
//! # Ok(())
//! # }
//! ```

pub mod aes;
pub mod cnn;
pub mod gemm;
pub mod llm;
pub mod reduce;

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helper for the compiled-program module tests: execute a job
    //! on a fresh chip and harvest its outputs through the job's own
    //! readback declarations (no hand-tracked register constants).

    use darth_pum::chip::DarthPumChip;
    use darth_pum::eval::{ExecJob, ExecOutput};
    use darth_pum::params::ChipParams;

    pub(crate) fn execute_job(job: &ExecJob) -> Vec<ExecOutput> {
        let program = job.decoded_program().expect("decodes");
        let mut chip = DarthPumChip::new(ChipParams::default(), job.tile.clone()).expect("builds");
        chip.execute(&program, &job.data).expect("executes");
        job.readbacks
            .iter()
            .map(|rb| {
                let pipe = chip
                    .tile_mut()
                    .pipeline_mut(usize::from(rb.pipe))
                    .expect("exists");
                let cells: Vec<i64> = (0..rb.elements)
                    .map(|e| {
                        if rb.signed {
                            pipe.read_value_signed(usize::from(rb.vr), e)
                                .expect("reads")
                        } else {
                            pipe.read_value(usize::from(rb.vr), e).expect("reads") as i64
                        }
                    })
                    .collect();
                ExecOutput {
                    label: rb.label.clone(),
                    cells,
                }
            })
            .collect()
    }
}

use std::fmt;

/// Errors produced by the application layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A configuration or shape problem in an application mapping.
    Mapping(String),
    /// The underlying DARTH-PUM simulator failed.
    Pum(darth_pum::Error),
    /// The digital substrate failed.
    Digital(darth_digital::Error),
    /// The analog substrate failed.
    Analog(darth_analog::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Mapping(msg) => write!(f, "application mapping: {msg}"),
            Error::Pum(e) => write!(f, "darth-pum: {e}"),
            Error::Digital(e) => write!(f, "digital PUM: {e}"),
            Error::Analog(e) => write!(f, "analog PUM: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Pum(e) => Some(e),
            Error::Digital(e) => Some(e),
            Error::Analog(e) => Some(e),
            Error::Mapping(_) => None,
        }
    }
}

impl From<darth_pum::Error> for Error {
    fn from(e: darth_pum::Error) -> Self {
        Error::Pum(e)
    }
}

impl From<darth_digital::Error> for Error {
    fn from(e: darth_digital::Error) -> Self {
        Error::Digital(e)
    }
}

impl From<darth_analog::Error> for Error {
    fn from(e: darth_analog::Error) -> Self {
        Error::Analog(e)
    }
}

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, Error>;
