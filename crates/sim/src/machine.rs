//! The functional simulator: encoded ISA streams in, output cells out.
//!
//! [`SimMachine`] owns one [`DarthPumChip`] and drives the full §4.2
//! execution flow from *encoded bytes*: every run decodes the 16-byte
//! records ([`darth_isa::encode`]), dispatches digital ops to the DCE
//! pipelines, routes analog ops through vACores, the shift units and the
//! A/D arbiter, and lets the IIU replay each MVM's reduction — all over
//! bit-accurate memory state. On top of the chip's own accounting the
//! machine keeps a per-mnemonic histogram of executed instructions, so a
//! differential run reports *what* it executed, not just how much.

use darth_digital::DcePipeline;
use darth_isa::instruction::Program;
use darth_pum::chip::{DarthPumChip, GenericChip, RunStats, SideChannel};
use darth_pum::eval::{ExecJob, ExecOutput, ExecRun, Executor, Readback};
use darth_pum::hct::HctConfig;
use darth_pum::params::ChipParams;
use darth_reram::{Cycles, PicoJoules};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Statistics of **one** simulator run: every field covers exactly that
/// run, so `histogram` values sum to `run.instructions` and
/// `busy_cycles`/`energy` are the run's own deltas even when several
/// programs execute on the same machine. Lifetime aggregates stay
/// available through [`SimMachine::histogram`] and the chip's meters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Chip-level run statistics (instructions, analog share, issue).
    pub run: RunStats,
    /// Instructions this run executed, by mnemonic. Keys are the interned
    /// `&'static str` mnemonics from
    /// [`darth_isa::instruction::Instruction::mnemonic`], so merging and
    /// comparing histograms never clones key strings.
    pub histogram: BTreeMap<&'static str, u64>,
    /// Tile busy cycles this run added.
    pub busy_cycles: Cycles,
    /// Tile energy this run added.
    pub energy: PicoJoules,
}

/// A functional DARTH-PUM machine executing encoded instruction streams.
#[derive(Debug)]
pub struct SimMachine {
    chip: DarthPumChip,
    histogram: BTreeMap<&'static str, u64>,
}

impl SimMachine {
    /// Builds a machine around one functional tile.
    ///
    /// # Errors
    ///
    /// Propagates tile construction errors.
    pub fn new(tile: HctConfig) -> darth_pum::Result<Self> {
        Ok(SimMachine {
            chip: DarthPumChip::new(ChipParams::default(), tile)?,
            histogram: BTreeMap::new(),
        })
    }

    /// The underlying chip (state inspection).
    pub fn chip(&self) -> &DarthPumChip {
        &self.chip
    }

    /// Mutable chip access (host staging between runs).
    pub fn chip_mut(&mut self) -> &mut DarthPumChip {
        &mut self.chip
    }

    /// Decodes and executes an encoded instruction stream.
    ///
    /// # Errors
    ///
    /// Returns decode errors for malformed records and the first
    /// execution error (bad operands, arbiter conflicts, missing
    /// side-channel data).
    pub fn run_encoded(&mut self, bytes: &[u8], data: &SideChannel) -> darth_pum::Result<SimStats> {
        let program = darth_isa::encode::decode_program(bytes).map_err(darth_pum::Error::Isa)?;
        self.run(&program, data)
    }

    /// Executes a decoded program.
    ///
    /// # Errors
    ///
    /// Returns the first execution error.
    pub fn run(&mut self, program: &Program, data: &SideChannel) -> darth_pum::Result<SimStats> {
        let busy_before = self.chip.tile().busy_cycles();
        let energy_before = self.chip.energy_meter().total();
        let run = self.chip.execute(program, data)?;
        // `execute` stops at the first Halt; count exactly the executed
        // prefix into the mnemonic histogram.
        let mut histogram = BTreeMap::new();
        for inst in program.iter().take(run.instructions as usize) {
            *histogram.entry(inst.mnemonic()).or_insert(0) += 1;
        }
        for (&mnemonic, count) in &histogram {
            *self.histogram.entry(mnemonic).or_insert(0) += count;
        }
        Ok(SimStats {
            run,
            histogram,
            busy_cycles: self.chip.tile().busy_cycles().saturating_sub(busy_before),
            energy: self.chip.energy_meter().total() - energy_before,
        })
    }

    /// Executed instructions by mnemonic, across all runs so far.
    pub fn histogram(&self) -> &BTreeMap<&'static str, u64> {
        &self.histogram
    }

    /// Reads one output location from the finished machine.
    ///
    /// # Errors
    ///
    /// Returns pipeline/register range errors.
    pub fn read_output(&mut self, readback: &Readback) -> darth_pum::Result<ExecOutput> {
        read_chip_output(&mut self.chip, readback)
    }
}

/// Reads one output location from a finished chip — shared by the
/// reference [`SimMachine`] and the fast [`crate::fast::FastMachine`], so
/// both decode readbacks identically.
pub(crate) fn read_chip_output<P: DcePipeline>(
    chip: &mut GenericChip<P>,
    readback: &Readback,
) -> darth_pum::Result<ExecOutput> {
    let pipe = chip.tile_mut().pipeline_mut(readback.pipe as usize)?;
    let cells = (0..readback.elements)
        .map(|e| {
            if readback.signed {
                pipe.read_value_signed(readback.vr as usize, e)
            } else {
                pipe.read_value(readback.vr as usize, e).map(|v| v as i64)
            }
        })
        .collect::<Result<_, _>>()?;
    Ok(ExecOutput {
        label: readback.label.clone(),
        cells,
    })
}

/// An [`ExecJob`] whose instruction stream was decoded exactly once by
/// [`SimExecutor::prepare`]; reusable across runs.
#[derive(Debug)]
pub struct PreparedJob<'j> {
    job: &'j ExecJob,
    program: Program,
}

impl PreparedJob<'_> {
    /// The decoded program.
    pub fn program(&self) -> &Program {
        &self.program
    }
}

/// An [`Executor`] that also reports full simulator statistics — the
/// contract the executor-pair differential mode
/// ([`crate::diff::DiffHarness::verify_pair`]) compares on: outputs plus
/// instructions, analog share, issue cycles, per-mnemonic histogram,
/// busy cycles and energy.
pub trait StatExecutor: Executor {
    /// Executes `job`, returning outputs and the run's [`SimStats`].
    ///
    /// # Errors
    ///
    /// As [`Executor::execute`].
    fn execute_with_stats(&self, job: &ExecJob) -> darth_pum::Result<(ExecRun, SimStats)>;
}

/// The reference [`Executor`]: one fresh [`SimMachine`] per job.
///
/// Decode is hoisted out of the run path: [`SimExecutor::prepare`] turns
/// a job into a reusable [`PreparedJob`] handle, and repeated
/// [`SimExecutor::run_prepared`] calls re-execute it without touching the
/// encoded bytes again. [`SimExecutor::decodes`] counts stream decodes so
/// tests can pin that invariant.
#[derive(Debug, Default)]
pub struct SimExecutor {
    decodes: AtomicU64,
}

impl SimExecutor {
    /// A fresh executor.
    pub fn new() -> Self {
        SimExecutor::default()
    }

    /// Instruction-stream decodes this executor has performed. Repeated
    /// [`SimExecutor::run_prepared`] calls on one handle must not move
    /// this counter.
    pub fn decodes(&self) -> u64 {
        self.decodes.load(Ordering::Relaxed)
    }

    /// Decodes `job`'s instruction stream once into a reusable handle.
    ///
    /// # Errors
    ///
    /// Returns decode errors for malformed records.
    pub fn prepare<'j>(&self, job: &'j ExecJob) -> darth_pum::Result<PreparedJob<'j>> {
        self.decodes.fetch_add(1, Ordering::Relaxed);
        let program = job.decoded_program()?;
        Ok(PreparedJob { job, program })
    }

    /// Runs a prepared job on a fresh machine — no re-decode — returning
    /// outputs and the run's statistics.
    ///
    /// # Errors
    ///
    /// Returns the first execution or readback error.
    pub fn run_prepared(
        &self,
        prepared: &PreparedJob<'_>,
    ) -> darth_pum::Result<(ExecRun, SimStats)> {
        let mut machine = SimMachine::new(prepared.job.tile.clone())?;
        let stats = machine.run(&prepared.program, &prepared.job.data)?;
        let outputs = prepared
            .job
            .readbacks
            .iter()
            .map(|rb| machine.read_output(rb))
            .collect::<darth_pum::Result<_>>()?;
        Ok((
            ExecRun {
                outputs,
                instructions: stats.run.instructions,
                analog_instructions: stats.run.analog_instructions,
            },
            stats,
        ))
    }
}

impl Executor for SimExecutor {
    fn name(&self) -> String {
        "darth-sim".into()
    }

    fn label(&self) -> String {
        "DARTH-PUM functional simulator".into()
    }

    fn execute(&self, job: &ExecJob) -> darth_pum::Result<ExecRun> {
        let prepared = self.prepare(job)?;
        self.run_prepared(&prepared).map(|(run, _)| run)
    }
}

impl StatExecutor for SimExecutor {
    fn execute_with_stats(&self, job: &ExecJob) -> darth_pum::Result<(ExecRun, SimStats)> {
        let prepared = self.prepare(job)?;
        self.run_prepared(&prepared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darth_isa::asm::assemble;
    use darth_isa::encode::encode_program;

    fn machine() -> SimMachine {
        SimMachine::new(HctConfig::small_test()).expect("builds")
    }

    #[test]
    fn runs_an_encoded_digital_program() {
        let program = assemble(
            "wimm p0 v0 0 25\n\
             wimm p0 v1 0 17\n\
             add p0 v2 v0 v1\n\
             halt\n",
        )
        .expect("assembles");
        let mut m = machine();
        let stats = m
            .run_encoded(&encode_program(&program), &SideChannel::new())
            .expect("runs");
        assert_eq!(stats.run.instructions, 4);
        assert_eq!(stats.histogram.get("wimm"), Some(&2));
        assert_eq!(stats.histogram.get("add"), Some(&1));
        assert_eq!(stats.histogram.get("halt"), Some(&1));
        assert!(stats.energy > PicoJoules::ZERO);
        let out = m
            .read_output(&Readback {
                label: "sum".into(),
                pipe: 0,
                vr: 2,
                elements: 1,
                signed: false,
            })
            .expect("reads");
        assert_eq!(out.cells, vec![42]);
    }

    #[test]
    fn stats_are_per_run_while_the_machine_aggregates() {
        let first =
            assemble("wimm p0 v0 0 1\nwimm p0 v1 0 2\nadd p0 v2 v0 v1\nhalt\n").expect("assembles");
        let second = assemble("xor p0 v3 v0 v1\nhalt\n").expect("assembles");
        let mut m = machine();
        let s1 = m
            .run_encoded(&encode_program(&first), &SideChannel::new())
            .expect("runs");
        let s2 = m
            .run_encoded(&encode_program(&second), &SideChannel::new())
            .expect("runs");
        // Each report covers exactly its own run…
        assert_eq!(s2.run.instructions, 2);
        assert_eq!(s2.histogram.values().sum::<u64>(), s2.run.instructions);
        assert!(!s2.histogram.contains_key("wimm"));
        assert!(s2.energy > PicoJoules::ZERO);
        assert!(s1.energy > PicoJoules::ZERO);
        // …while the machine keeps the lifetime aggregate.
        assert_eq!(
            m.histogram().values().sum::<u64>(),
            s1.run.instructions + s2.run.instructions
        );
    }

    #[test]
    fn histogram_counts_only_the_executed_prefix() {
        let program = assemble("nop\nhalt\nwimm p0 v0 0 9\n").expect("assembles");
        let mut m = machine();
        let stats = m
            .run_encoded(&encode_program(&program), &SideChannel::new())
            .expect("runs");
        assert_eq!(stats.run.instructions, 2);
        assert!(!stats.histogram.contains_key("wimm"));
    }

    #[test]
    fn malformed_records_are_decode_errors() {
        let mut m = machine();
        let err = m
            .run_encoded(&[0xEEu8; 16], &SideChannel::new())
            .unwrap_err();
        assert!(matches!(err, darth_pum::Error::Isa(_)));
        // Trailing partial record is rejected too.
        let err = m.run_encoded(&[0u8; 17], &SideChannel::new()).unwrap_err();
        assert!(matches!(err, darth_pum::Error::Isa(_)));
    }

    #[test]
    fn executor_runs_a_hybrid_job_end_to_end() {
        let mut data = SideChannel::new();
        let handle = data
            .stage_matrix(vec![vec![5, 9], vec![8, 7]])
            .expect("stages");
        let program = assemble(&format!(
            "valloc ac0 4 4 3 0\n\
             progm ac0 {handle}\n\
             wimm p0 v0 0 2\n\
             wimm p0 v0 1 7\n\
             mvm ac0 p0 v0 p1 v4 0\n\
             halt\n"
        ))
        .expect("assembles");
        let job = ExecJob {
            name: "figure9".into(),
            tile: HctConfig::small_test(),
            program: encode_program(&program),
            data,
            readbacks: vec![Readback {
                label: "result".into(),
                pipe: 1,
                vr: 4,
                elements: 2,
                signed: true,
            }],
        };
        let run = SimExecutor::new().execute(&job).expect("executes");
        assert_eq!(run.outputs[0].cells, vec![66, 67]);
        assert_eq!(run.analog_instructions, 2);
        assert_eq!(run.instructions, 6);
    }

    #[test]
    fn prepared_jobs_decode_once_and_rerun_identically() {
        let program =
            assemble("wimm p0 v0 0 25\nwimm p0 v1 0 17\nadd p0 v2 v0 v1\nhalt\n").expect("parses");
        let job = ExecJob {
            name: "repeat".into(),
            tile: HctConfig::small_test(),
            program: encode_program(&program),
            data: SideChannel::new(),
            readbacks: vec![Readback {
                label: "sum".into(),
                pipe: 0,
                vr: 2,
                elements: 1,
                signed: false,
            }],
        };
        let executor = SimExecutor::new();
        let prepared = executor.prepare(&job).expect("decodes");
        assert_eq!(executor.decodes(), 1);
        let (first_run, first_stats) = executor.run_prepared(&prepared).expect("runs");
        let (second_run, second_stats) = executor.run_prepared(&prepared).expect("runs");
        let (third_run, third_stats) = executor.run_prepared(&prepared).expect("runs");
        // Repeated runs of one prepared job: identical outputs and stats…
        assert_eq!(first_run, second_run);
        assert_eq!(first_run, third_run);
        assert_eq!(first_stats, second_stats);
        assert_eq!(first_stats, third_stats);
        assert_eq!(first_run.outputs[0].cells, vec![42]);
        // …and not one further decode of the instruction stream.
        assert_eq!(executor.decodes(), 1);
        // The convenience path still decodes (once per call).
        executor.execute(&job).expect("runs");
        assert_eq!(executor.decodes(), 2);
    }
}
