//! Resident compiled programs and the signature-keyed LRU program cache
//! — the serving layer's core optimization.
//!
//! The fast path already amortizes *decode* and *compile* across reruns
//! of one job ([`crate::FastExecutor::prepare`]); this module amortizes
//! them across a **request stream**. A [`ResidentProgram`] is built once
//! per distinct [`JobSignature`]: its setup section (weight programming,
//! constants, round keys) is executed once onto a prototype
//! [`FastMachine`] and the compute body is precompiled once. Serving a
//! request then costs one machine clone, the interpretation of a tiny
//! per-request input program, and one precompiled body run — the
//! ACE-style "keep the circuit resident, swap the inputs" trick.
//!
//! [`ProgramCache`] bounds how many residents stay warm, with LRU
//! eviction and hit/miss/eviction counters ([`CacheStats`]) that the
//! serving layer reports per chip.

use crate::fast::{FastExecutor, FastMachine};
use darth_digital::PackedPipeline;
use darth_pum::chip::CompiledProgram;
use darth_pum::eval::{ExecJob, ExecRun, JobSignature, SplitJob};
use darth_reram::{Cycles, PicoJoules};
use std::collections::BTreeMap;

/// Decodes an encoded section, mapping ISA errors into the crate error.
fn decode(bytes: &[u8]) -> darth_pum::Result<darth_isa::instruction::Program> {
    darth_isa::encode::decode_program(bytes).map_err(darth_pum::Error::Isa)
}

/// One served request's result: outputs plus the request's own cost
/// deltas (input interpretation **and** compiled body, but never the
/// resident setup — that was paid once at [`ResidentProgram`] build
/// time and is reported separately as [`ResidentProgram::setup_cycles`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ServedRun {
    /// Outputs and instruction counts (input stub + body).
    pub run: ExecRun,
    /// Tile busy cycles this request added.
    pub busy_cycles: Cycles,
    /// Tile energy this request added.
    pub energy: PicoJoules,
}

/// A compiled program kept resident for a request stream: the warmed
/// prototype machine (setup already executed), the precompiled compute
/// body, and the one-time setup cost.
#[derive(Debug)]
pub struct ResidentProgram {
    split: SplitJob,
    signature: JobSignature,
    compiled: CompiledProgram<PackedPipeline>,
    warmed: FastMachine,
    setup_cycles: Cycles,
    setup_instructions: u64,
}

impl ResidentProgram {
    /// Builds the resident form of `split`: one tile construction, one
    /// interpreted setup run, one body compile.
    ///
    /// # Errors
    ///
    /// Returns decode errors for malformed sections, tile construction
    /// errors, and the first setup execution error.
    pub fn for_split(split: SplitJob) -> darth_pum::Result<Self> {
        let signature = split.signature();
        let mut warmed = FastMachine::new(split.tile.clone())?;
        let setup_program = decode(&split.setup)?;
        let setup_stats = warmed.chip_mut().execute(&setup_program, &split.data)?;
        let setup_cycles = warmed.chip().tile().busy_cycles();
        let compiled = FastMachine::compile(&decode(&split.body)?);
        Ok(ResidentProgram {
            split,
            signature,
            compiled,
            warmed,
            setup_cycles,
            setup_instructions: setup_stats.instructions,
        })
    }

    /// Builds the resident form of a monolithic job: an empty setup and
    /// the whole program as the body. Serving it with an empty input
    /// replays the job exactly — the degenerate case the cache-aware
    /// [`FastExecutor::run_cached`] entry point uses for identical
    /// repeated jobs.
    ///
    /// # Errors
    ///
    /// As [`ResidentProgram::for_split`].
    pub fn for_job(job: &ExecJob) -> darth_pum::Result<Self> {
        ResidentProgram::for_split(SplitJob {
            name: job.name.clone(),
            tile: job.tile.clone(),
            setup: Vec::new(),
            body: job.program.clone(),
            data: job.data.clone(),
            readbacks: job.readbacks.clone(),
        })
    }

    /// The signature this resident was built from (the cache key).
    pub fn signature(&self) -> JobSignature {
        self.signature
    }

    /// The split job this resident serves.
    pub fn split(&self) -> &SplitJob {
        &self.split
    }

    /// Busy cycles the one-time setup run consumed — what a cache miss
    /// charges to the serving timeline on top of the first request.
    pub fn setup_cycles(&self) -> Cycles {
        self.setup_cycles
    }

    /// Instructions the one-time setup run executed.
    pub fn setup_instructions(&self) -> u64 {
        self.setup_instructions
    }

    /// The precompiled compute body.
    pub fn compiled(&self) -> &CompiledProgram<PackedPipeline> {
        &self.compiled
    }

    /// Serves one request: clones the warmed prototype, interprets the
    /// per-request `input` section (halt-free, usually a handful of
    /// `wimm`s), runs the precompiled body, and reads the outputs back.
    /// Deterministic: identical inputs produce byte-identical
    /// [`ServedRun`]s at any point in the stream, because every serve
    /// starts from the same warmed clone.
    ///
    /// # Errors
    ///
    /// Returns input decode errors and the first execution or readback
    /// error.
    pub fn serve(&self, input: &[u8]) -> darth_pum::Result<ServedRun> {
        let mut machine = self.warmed.clone();
        let busy_before = machine.chip().tile().busy_cycles();
        let energy_before = machine.chip().energy_meter().total();
        let input_program = decode(input)?;
        let input_stats = machine
            .chip_mut()
            .execute(&input_program, &self.split.data)?;
        let body_stats = machine.run_compiled(&self.compiled, &self.split.data)?;
        let outputs = self
            .split
            .readbacks
            .iter()
            .map(|rb| machine.read_output(rb))
            .collect::<darth_pum::Result<_>>()?;
        Ok(ServedRun {
            run: ExecRun {
                outputs,
                instructions: input_stats.instructions + body_stats.run.instructions,
                analog_instructions: input_stats.analog_instructions
                    + body_stats.run.analog_instructions,
            },
            busy_cycles: machine
                .chip()
                .tile()
                .busy_cycles()
                .saturating_sub(busy_before),
            energy: machine.chip().energy_meter().total() - energy_before,
        })
    }
}

/// Hit/miss/eviction counters of one [`ProgramCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered by a resident entry.
    pub hits: u64,
    /// Lookups that had to build a resident entry.
    pub misses: u64,
    /// Resident entries evicted to stay within capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over all lookups, in `[0, 1]`; `0` before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded LRU cache of [`ResidentProgram`]s keyed by
/// [`JobSignature`].
///
/// Recency is a logical tick bumped on every lookup; eviction removes
/// the least-recently-used entry (ties impossible — ticks are unique).
/// All state is plain data behind `&mut self`, so a per-chip cache in a
/// serving worker is deterministic by construction.
#[derive(Debug)]
pub struct ProgramCache {
    capacity: usize,
    tick: u64,
    entries: BTreeMap<JobSignature, (u64, ResidentProgram)>,
    stats: CacheStats,
}

impl ProgramCache {
    /// A cache holding at most `capacity` resident programs (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ProgramCache {
            capacity: capacity.max(1),
            tick: 0,
            entries: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Lookup/insert counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resident entries currently warm.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no residents yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The resident for `split`, building (and possibly evicting) on
    /// miss. The returned reference stays valid until the next `&mut`
    /// call.
    ///
    /// # Errors
    ///
    /// Returns [`ResidentProgram::for_split`] build errors; the cache is
    /// unchanged on error.
    pub fn get_or_build_split(&mut self, split: &SplitJob) -> darth_pum::Result<&ResidentProgram> {
        let signature = split.signature();
        if !self.entries.contains_key(&signature) {
            let resident = ResidentProgram::for_split(split.clone())?;
            self.stats.misses += 1;
            self.evict_to(self.capacity - 1);
            self.entries.insert(signature, (self.tick, resident));
        } else {
            self.stats.hits += 1;
        }
        self.tick += 1;
        let (last_used, resident) = self
            .entries
            .get_mut(&signature)
            .expect("entry was just inserted or found");
        *last_used = self.tick;
        Ok(resident)
    }

    /// The resident for a monolithic `job` (degenerate split — see
    /// [`ResidentProgram::for_job`]), building on miss.
    ///
    /// # Errors
    ///
    /// As [`ProgramCache::get_or_build_split`].
    pub fn get_or_build_job(&mut self, job: &ExecJob) -> darth_pum::Result<&ResidentProgram> {
        let signature = job.signature();
        if !self.entries.contains_key(&signature) {
            let resident = ResidentProgram::for_job(job)?;
            // A monolithic resident is keyed by the *job* signature (the
            // degenerate split signs differently — it domain-separates
            // sections), so insert under the lookup key explicitly.
            self.stats.misses += 1;
            self.evict_to(self.capacity - 1);
            self.entries.insert(signature, (self.tick, resident));
        } else {
            self.stats.hits += 1;
        }
        self.tick += 1;
        let (last_used, resident) = self
            .entries
            .get_mut(&signature)
            .expect("entry was just inserted or found");
        *last_used = self.tick;
        Ok(resident)
    }

    /// Evicts least-recently-used entries until at most `target` remain.
    fn evict_to(&mut self, target: usize) {
        while self.entries.len() > target {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(sig, _)| *sig)
                .expect("non-empty while above target");
            self.entries.remove(&oldest);
            self.stats.evictions += 1;
        }
    }
}

impl FastExecutor {
    /// Cache-aware execution: identical repeated jobs (same
    /// [`ExecJob::signature`]) reuse one resident compiled program and
    /// warmed prototype machine from `cache` instead of re-decoding,
    /// re-compiling and re-constructing per call.
    ///
    /// # Errors
    ///
    /// Returns resident build errors and the first execution or readback
    /// error.
    pub fn run_cached(
        &self,
        job: &ExecJob,
        cache: &mut ProgramCache,
    ) -> darth_pum::Result<ServedRun> {
        cache.get_or_build_job(job)?.serve(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::SimExecutor;
    use crate::machine::StatExecutor;
    use darth_isa::asm::assemble;
    use darth_isa::encode::encode_program;
    use darth_pum::chip::SideChannel;
    use darth_pum::eval::Readback;
    use darth_pum::hct::HctConfig;

    fn digital_job(value: u64) -> ExecJob {
        let program = assemble(&format!(
            "wimm p0 v0 0 {value}\n\
             wimm p0 v1 0 17\n\
             add p0 v2 v0 v1\n\
             halt\n"
        ))
        .expect("parses");
        ExecJob {
            name: format!("digital-{value}"),
            tile: HctConfig::small_test(),
            program: encode_program(&program),
            data: SideChannel::new(),
            readbacks: vec![Readback {
                label: "sum".into(),
                pipe: 0,
                vr: 2,
                elements: 1,
                signed: false,
            }],
        }
    }

    /// A hand-built split: constant 17 staged in setup, per-request
    /// value via the input section, sum computed by the resident body.
    fn digital_split() -> SplitJob {
        let setup = assemble("wimm p0 v1 0 17\n").expect("parses");
        let body = assemble("add p0 v2 v0 v1\nhalt\n").expect("parses");
        SplitJob {
            name: "digital-split".into(),
            tile: HctConfig::small_test(),
            setup: encode_program(&setup),
            body: encode_program(&body),
            data: SideChannel::new(),
            readbacks: vec![Readback {
                label: "sum".into(),
                pipe: 0,
                vr: 2,
                elements: 1,
                signed: false,
            }],
        }
    }

    fn input_for(value: u64) -> Vec<u8> {
        encode_program(&assemble(&format!("wimm p0 v0 0 {value}\n")).expect("parses"))
    }

    #[test]
    fn resident_split_serves_bit_exact_against_the_reference() {
        let split = digital_split();
        let resident = ResidentProgram::for_split(split.clone()).expect("builds");
        let reference = SimExecutor::new();
        for value in [0u64, 1, 9, 25, 63] {
            let input = input_for(value);
            let served = resident.serve(&input).expect("serves");
            // The reference runs the reassembled monolithic program.
            let (ref_run, _) = reference
                .execute_with_stats(&split.full_job(&input))
                .expect("reference runs");
            assert_eq!(served.run.outputs, ref_run.outputs, "value {value}");
            assert_eq!(served.run.outputs[0].cells, vec![value as i64 + 17]);
            // Served instruction counts exclude exactly the setup.
            assert_eq!(
                served.run.instructions + resident.setup_instructions(),
                ref_run.instructions
            );
        }
        // Serving is order-independent: a re-serve of the first input
        // after others is byte-identical (each serve clones the warmed
        // prototype).
        let first = resident.serve(&input_for(9)).expect("serves");
        let again = resident.serve(&input_for(9)).expect("serves");
        assert_eq!(first, again);
    }

    #[test]
    fn run_cached_matches_uncached_and_counts_hits() {
        let executor = FastExecutor::new();
        let mut cache = ProgramCache::new(4);
        let job = digital_job(25);
        let (plain, _) = executor.execute_with_stats(&job).expect("runs");
        let first = executor.run_cached(&job, &mut cache).expect("serves");
        let second = executor.run_cached(&job, &mut cache).expect("serves");
        assert_eq!(first.run, plain);
        assert_eq!(first, second);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_resident() {
        let executor = FastExecutor::new();
        let mut cache = ProgramCache::new(2);
        let a = digital_job(1);
        let b = digital_job(2);
        let c = digital_job(3);
        executor.run_cached(&a, &mut cache).expect("serves");
        executor.run_cached(&b, &mut cache).expect("serves");
        // Touch `a` so `b` is the LRU, then overflow with `c`.
        executor.run_cached(&a, &mut cache).expect("serves");
        executor.run_cached(&c, &mut cache).expect("serves");
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        // `a` and `c` are warm; `b` was evicted and must rebuild.
        executor.run_cached(&a, &mut cache).expect("serves");
        executor.run_cached(&c, &mut cache).expect("serves");
        assert_eq!(cache.stats().misses, 3);
        executor.run_cached(&b, &mut cache).expect("serves");
        assert_eq!(cache.stats().misses, 4);
        assert!(cache.stats().hit_rate() > 0.0);
    }

    #[test]
    fn cache_capacity_has_a_floor_of_one() {
        let mut cache = ProgramCache::new(0);
        let split = digital_split();
        cache.get_or_build_split(&split).expect("builds");
        assert_eq!(cache.len(), 1);
        // A second lookup of the same split hits.
        cache.get_or_build_split(&split).expect("hits");
        assert_eq!(cache.stats().hits, 1);
    }
}
