//! `darth_sim`: the functional DARTH-PUM ISA simulator and its
//! golden-model differential harness.
//!
//! The evaluation stack built in earlier layers *prices* DARTH-PUM
//! programs analytically (`darth_pum::eval::ArchModel` accumulators, the
//! `darth_eval` engine) but never executes them. This crate is the
//! second backend: it **runs** encoded [`darth_isa`] instruction streams
//! over bit-accurate machine state — decode, IIU-assisted dispatch,
//! ACE/DCE array ops, shift/transpose/arbiter data movement — and proves
//! the results correct against golden software references.
//!
//! * [`machine::SimMachine`] — the simulator: encoded bytes in, output
//!   cells out, with per-mnemonic execution histograms and energy/cycle
//!   accounting. [`machine::SimExecutor`] exposes it as the reference
//!   [`darth_pum::eval::Executor`] backend.
//! * [`diff`] — the differential harness: a registry of
//!   [`darth_pum::eval::Executable`] jobs (each paired with the priced
//!   [`darth_pum::eval::Workload`] twin the analytical models already
//!   consume), compared **cell by cell** against golden references. The
//!   standard registry covers AES-128/192/256 on FIPS-197 vectors, a
//!   deterministic integer GEMM, and a convolution layer.
//!   [`DiffHarness::verify_pair`] runs the registry through *two*
//!   executors and demands bit-identical outputs **and** identical
//!   statistics; [`diff::bulk_aes_cases`] scales the registry to
//!   thousands of AES blocks.
//! * [`fast`] — the fast execution path: packed `u64` bit-planes
//!   ([`darth_digital::PackedPipeline`]), programs precompiled into
//!   jump tables ([`darth_pum::chip::CompiledProgram`]), and batches
//!   sharded across `std::thread::scope` workers.
//!   [`fast::FastExecutor`] is proven bit-exact against
//!   [`machine::SimExecutor`] by the pair harness.
//! * [`cache`] — resident compiled programs for request serving:
//!   [`cache::ResidentProgram`] runs a split job's setup once onto a
//!   warmed prototype machine and precompiles its body, so serving a
//!   request costs one clone + a tiny input stub + one compiled run;
//!   [`cache::ProgramCache`] bounds the warm set with LRU eviction,
//!   keyed by [`darth_pum::eval::JobSignature`].
//!
//! # Example: FIPS-197 through the simulator
//!
//! ```
//! use darth_apps::aes::program::AesExec;
//! use darth_pum::eval::{Executable, Executor};
//! use darth_sim::SimExecutor;
//!
//! # fn main() -> Result<(), darth_pum::Error> {
//! // The Appendix B worked example, compiled to one ISA stream.
//! let case = AesExec::fips197_appendix_b();
//! let run = SimExecutor::new().execute(&case.job()?)?;
//! assert_eq!(run.outputs, case.golden()?);
//! assert_eq!(
//!     run.outputs[0].cells[..4],
//!     [0x39, 0x25, 0x84, 0x1d]
//! );
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod diff;
pub mod fast;
pub mod machine;

pub use cache::{CacheStats, ProgramCache, ResidentProgram, ServedRun};
pub use diff::{
    bulk_aes_cases, standard_cases, DiffCase, DiffHarness, DiffReport, PairCaseReport, PairReport,
};
pub use fast::{FastExecutor, FastMachine, PreparedFastJob};
pub use machine::{PreparedJob, SimExecutor, SimMachine, SimStats, StatExecutor};
