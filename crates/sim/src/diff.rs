//! The golden-model differential harness.
//!
//! Real PIM evaluation stacks pair cost models with functional
//! simulation and host-reference cross-checks; this module is that
//! cross-check for the whole repro. A [`DiffCase`] bundles an
//! [`Executable`] (the encoded-ISA job plus its golden outputs) with the
//! *priced twin* — the [`Workload`] the analytical models already price —
//! so one registry entry is simultaneously executed on an [`Executor`]
//! and priced on an [`ArchModel`]. [`DiffHarness::verify`] compares
//! executor outputs against the golden reference **cell by cell** and
//! reports every mismatch; [`DiffHarness::verify_priced`] additionally
//! prices each twin, proving the two backends stay wired to the same
//! scenarios.
//!
//! [`standard_cases`] is the registry the tier-1 gate runs: AES-128/192/
//! 256 on FIPS-197 vectors (Appendix B and C), a deterministic integer
//! GEMM, a convolution layer against the im2col `conv2d` reference, and
//! a PrIM-style vector reduction against a software sum.

use crate::machine::{SimExecutor, SimStats, StatExecutor};
use darth_apps::aes::golden::KeySize;
use darth_apps::aes::program::AesExec;
use darth_apps::cnn::program::ConvExec;
use darth_apps::gemm::GemmExec;
use darth_apps::reduce::ReduceExec;
use darth_pum::eval::{ArchModel, Executable, Executor, Workload};
use darth_pum::trace::CostReport;

/// One differential registry entry: the executable job and, where one
/// exists, the priced twin scenario.
pub struct DiffCase {
    /// The functionally executable side.
    pub executable: Box<dyn Executable>,
    /// The analytically priced side (op-stream emitter), if paired.
    pub priced: Option<Box<dyn Workload>>,
}

impl DiffCase {
    /// A case with both sides.
    pub fn paired(executable: impl Executable + 'static, priced: impl Workload + 'static) -> Self {
        DiffCase {
            executable: Box::new(executable),
            priced: Some(Box::new(priced)),
        }
    }

    /// An execution-only case.
    pub fn exec_only(executable: impl Executable + 'static) -> Self {
        DiffCase {
            executable: Box::new(executable),
            priced: None,
        }
    }
}

/// One cell that differed between the executor and the golden model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellMismatch {
    /// The output the cell belongs to.
    pub output: String,
    /// Element index within the output.
    pub index: usize,
    /// Golden reference value.
    pub expected: i64,
    /// Executor value.
    pub got: i64,
}

/// The verdict for one case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseReport {
    /// Case name.
    pub name: String,
    /// Total cells compared.
    pub cells: usize,
    /// Every differing cell (empty = bit-exact).
    pub mismatches: Vec<CellMismatch>,
    /// Instructions the executor ran.
    pub instructions: u64,
    /// Analog instructions among them.
    pub analog_instructions: u64,
    /// The priced twin's cost report, when the case is paired and a
    /// model was supplied.
    pub cost: Option<CostReport>,
}

impl CaseReport {
    /// Whether every cell matched.
    pub fn is_exact(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// The harness verdict across all cases.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Executor label the cases ran on.
    pub executor: String,
    /// Per-case verdicts, in registry order.
    pub cases: Vec<CaseReport>,
}

impl DiffReport {
    /// Whether every case matched its golden model bit-exactly.
    pub fn all_exact(&self) -> bool {
        self.cases.iter().all(CaseReport::is_exact)
    }

    /// Total cells compared across all cases.
    pub fn total_cells(&self) -> usize {
        self.cases.iter().map(|c| c.cells).sum()
    }

    /// Total mismatching cells across all cases.
    pub fn total_mismatches(&self) -> usize {
        self.cases.iter().map(|c| c.mismatches.len()).sum()
    }

    /// A one-line-per-case summary for logs and panic messages.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for case in &self.cases {
            let verdict = if case.is_exact() {
                "exact".to_owned()
            } else {
                format!("{} MISMATCHED CELLS", case.mismatches.len())
            };
            out.push_str(&format!(
                "{}: {} cells, {} ({} instructions, {} analog)\n",
                case.name, case.cells, verdict, case.instructions, case.analog_instructions
            ));
        }
        out
    }
}

/// The verdict for one case run through an executor *pair*
/// ([`DiffHarness::verify_pair`]): cell-by-cell output comparison plus
/// full statistics equality — mnemonic histograms, cycle counts and
/// energy must all agree, not just the readbacks.
#[derive(Debug, Clone, PartialEq)]
pub struct PairCaseReport {
    /// Case name.
    pub name: String,
    /// Total cells compared.
    pub cells: usize,
    /// Every differing cell — `expected` is the reference executor,
    /// `got` the candidate (empty = bit-exact outputs).
    pub mismatches: Vec<CellMismatch>,
    /// Whether the two executors reported identical statistics.
    pub stats_match: bool,
    /// Statistics from the reference executor.
    pub reference_stats: SimStats,
    /// Statistics from the candidate executor.
    pub candidate_stats: SimStats,
}

impl PairCaseReport {
    /// Whether outputs *and* statistics matched exactly.
    pub fn is_exact(&self) -> bool {
        self.mismatches.is_empty() && self.stats_match
    }
}

/// The verdict across all cases of an executor-pair run.
#[derive(Debug, Clone, PartialEq)]
pub struct PairReport {
    /// Reference executor name.
    pub reference: String,
    /// Candidate executor name.
    pub candidate: String,
    /// Per-case verdicts, in registry order.
    pub cases: Vec<PairCaseReport>,
}

impl PairReport {
    /// Whether every case matched outputs and statistics exactly.
    pub fn all_exact(&self) -> bool {
        self.cases.iter().all(PairCaseReport::is_exact)
    }

    /// Total cells compared across all cases.
    pub fn total_cells(&self) -> usize {
        self.cases.iter().map(|c| c.cells).sum()
    }

    /// A one-line-per-case summary for logs and panic messages.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for case in &self.cases {
            let verdict = if case.is_exact() {
                "exact".to_owned()
            } else if case.mismatches.is_empty() {
                "STATS DIVERGED".to_owned()
            } else {
                format!("{} MISMATCHED CELLS", case.mismatches.len())
            };
            out.push_str(&format!("{}: {} cells, {verdict}\n", case.name, case.cells));
        }
        out
    }
}

/// The differential harness: a registry of cases plus the executor to
/// run them on.
pub struct DiffHarness {
    cases: Vec<DiffCase>,
    executor: Box<dyn Executor>,
}

impl DiffHarness {
    /// An empty harness over the reference simulator.
    pub fn new() -> Self {
        DiffHarness {
            cases: Vec::new(),
            executor: Box::new(SimExecutor::new()),
        }
    }

    /// The standard registry ([`standard_cases`]) over the reference
    /// simulator.
    pub fn standard() -> Self {
        DiffHarness {
            cases: standard_cases(),
            executor: Box::new(SimExecutor::new()),
        }
    }

    /// Replaces the executor backend.
    #[must_use]
    pub fn with_executor(mut self, executor: impl Executor + 'static) -> Self {
        self.executor = Box::new(executor);
        self
    }

    /// Adds a case (builder style).
    #[must_use]
    pub fn with_case(mut self, case: DiffCase) -> Self {
        self.cases.push(case);
        self
    }

    /// Registered cases.
    pub fn cases(&self) -> &[DiffCase] {
        &self.cases
    }

    /// Executes every case and compares outputs cell by cell.
    ///
    /// # Errors
    ///
    /// Returns the first job-compilation or execution error; comparison
    /// differences are *not* errors — they land in the report.
    pub fn verify(&self) -> darth_pum::Result<DiffReport> {
        self.run(None)
    }

    /// Executes every case and prices each paired twin on `model`.
    ///
    /// # Errors
    ///
    /// As [`DiffHarness::verify`].
    pub fn verify_priced(&self, model: &dyn ArchModel) -> darth_pum::Result<DiffReport> {
        self.run(Some(model))
    }

    /// Runs every case on *both* executors and demands equivalence:
    /// bit-identical outputs cell by cell, plus identical statistics
    /// (instruction counts, per-mnemonic histograms, busy cycles,
    /// energy). This is the fast-path acceptance gate — a candidate
    /// backend that is merely *numerically* right but executes a
    /// different instruction mix fails here.
    ///
    /// # Errors
    ///
    /// Returns the first job-compilation or execution error from either
    /// executor; divergences are *not* errors — they land in the report.
    pub fn verify_pair(
        &self,
        reference: &dyn StatExecutor,
        candidate: &dyn StatExecutor,
    ) -> darth_pum::Result<PairReport> {
        let mut cases = Vec::with_capacity(self.cases.len());
        for case in &self.cases {
            let name = case.executable.exec_name();
            let job = case.executable.job()?;
            let (ref_run, reference_stats) = reference.execute_with_stats(&job)?;
            let (cand_run, candidate_stats) = candidate.execute_with_stats(&job)?;
            let mut mismatches = Vec::new();
            let mut cells = 0usize;
            for (expected, got) in ref_run.outputs.iter().zip(&cand_run.outputs) {
                let len = expected.cells.len().max(got.cells.len());
                cells += len;
                for i in 0..len {
                    let want = expected.cells.get(i).copied();
                    let have = got.cells.get(i).copied();
                    if want != have {
                        mismatches.push(CellMismatch {
                            output: expected.label.clone(),
                            index: i,
                            expected: want.unwrap_or(i64::MIN),
                            got: have.unwrap_or(i64::MIN),
                        });
                    }
                }
            }
            if ref_run.outputs.len() != cand_run.outputs.len() {
                mismatches.push(CellMismatch {
                    output: format!(
                        "output-count (reference {}, candidate {})",
                        ref_run.outputs.len(),
                        cand_run.outputs.len()
                    ),
                    index: 0,
                    expected: ref_run.outputs.len() as i64,
                    got: cand_run.outputs.len() as i64,
                });
            }
            let stats_match = reference_stats == candidate_stats;
            cases.push(PairCaseReport {
                name,
                cells,
                mismatches,
                stats_match,
                reference_stats,
                candidate_stats,
            });
        }
        Ok(PairReport {
            reference: reference.name(),
            candidate: candidate.name(),
            cases,
        })
    }

    fn run(&self, model: Option<&dyn ArchModel>) -> darth_pum::Result<DiffReport> {
        let mut cases = Vec::with_capacity(self.cases.len());
        for case in &self.cases {
            let name = case.executable.exec_name();
            let job = case.executable.job()?;
            let golden = case.executable.golden()?;
            let run = self.executor.execute(&job)?;
            let mut mismatches = Vec::new();
            let mut cells = 0usize;
            for (reference, got) in golden.iter().zip(&run.outputs) {
                // Shape differences surface as mismatches at the missing
                // indices rather than silently truncating the check.
                let len = reference.cells.len().max(got.cells.len());
                cells += len;
                for i in 0..len {
                    let expected = reference.cells.get(i).copied();
                    let actual = got.cells.get(i).copied();
                    if expected != actual {
                        mismatches.push(CellMismatch {
                            output: reference.label.clone(),
                            index: i,
                            expected: expected.unwrap_or(i64::MIN),
                            got: actual.unwrap_or(i64::MIN),
                        });
                    }
                }
            }
            if golden.len() != run.outputs.len() {
                mismatches.push(CellMismatch {
                    output: format!(
                        "output-count (golden {}, executor {})",
                        golden.len(),
                        run.outputs.len()
                    ),
                    index: 0,
                    expected: golden.len() as i64,
                    got: run.outputs.len() as i64,
                });
            }
            let cost = match (model, &case.priced) {
                (Some(m), Some(w)) => {
                    // The priced twin streams through the model's
                    // accumulator while the same scenario just executed
                    // functionally — both backends from one registry row.
                    let mut acc = m.accumulator();
                    w.emit(&mut *acc);
                    Some(acc.finish())
                }
                _ => None,
            };
            cases.push(CaseReport {
                name,
                cells,
                mismatches,
                instructions: run.instructions,
                analog_instructions: run.analog_instructions,
                cost,
            });
        }
        Ok(DiffReport {
            executor: self.executor.name(),
            cases,
        })
    }
}

impl Default for DiffHarness {
    fn default() -> Self {
        DiffHarness::new()
    }
}

/// The standard differential registry: AES-128 (FIPS-197 Appendix B),
/// AES-128/192/256 (Appendix C), the standard integer GEMM, the standard
/// convolution layer, and the standard PrIM-style reduction — each
/// paired with its priced twin.
pub fn standard_cases() -> Vec<DiffCase> {
    use darth_apps::aes::workload::{AesVariant, AesWorkload};
    let aes_twin = |variant| AesWorkload { variant };
    let gemm = GemmExec::standard();
    let conv = ConvExec::standard();
    let reduce = ReduceExec::standard();
    vec![
        DiffCase::paired(AesExec::fips197_appendix_b(), aes_twin(AesVariant::Aes128)),
        DiffCase::paired(
            AesExec::fips197_appendix_c(KeySize::Aes128),
            aes_twin(AesVariant::Aes128),
        ),
        DiffCase::paired(
            AesExec::fips197_appendix_c(KeySize::Aes192),
            aes_twin(AesVariant::Aes192),
        ),
        DiffCase::paired(
            AesExec::fips197_appendix_c(KeySize::Aes256),
            aes_twin(AesVariant::Aes256),
        ),
        DiffCase::paired(gemm, gemm.workload()),
        DiffCase::paired(conv, conv.workload()),
        DiffCase::paired(reduce, reduce.workload()),
    ]
}

/// A scaled bulk-encryption registry: `blocks` AES-128 cases under one
/// fixed key, block `i` encrypting a counter plaintext (big-endian
/// counter in bytes 8..16). Deterministic by construction, so any block
/// count produces a reproducible workload for throughput and
/// equivalence runs at scale (`make sim-verify` uses 1000+).
pub fn bulk_aes_cases(blocks: usize) -> Vec<DiffCase> {
    let key: [u8; 16] = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];
    (0..blocks)
        .map(|i| {
            let mut plaintext = [0u8; 16];
            plaintext[8..16].copy_from_slice(&(i as u64).to_be_bytes());
            DiffCase::exec_only(AesExec::aes128(format!("bulk-aes-{i}"), &key, plaintext))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use darth_pum::eval::{ExecJob, ExecOutput};

    #[test]
    fn standard_registry_covers_the_acceptance_surface() {
        let names: Vec<String> = standard_cases()
            .iter()
            .map(|c| c.executable.exec_name())
            .collect();
        assert!(names.iter().any(|n| n.contains("aes-128")));
        assert!(names.iter().any(|n| n.contains("aes-192")));
        assert!(names.iter().any(|n| n.contains("aes-256")));
        assert!(names.iter().any(|n| n.starts_with("gemm-")));
        assert!(names.iter().any(|n| n.starts_with("conv-")));
        assert!(names.iter().any(|n| n.starts_with("reduce-")));
        assert!(standard_cases().iter().all(|c| c.priced.is_some()));
    }

    /// An executable whose golden deliberately disagrees with the job.
    struct Corrupt;

    impl Executable for Corrupt {
        fn exec_name(&self) -> String {
            "corrupt".into()
        }
        fn job(&self) -> darth_pum::Result<ExecJob> {
            GemmExec::standard().job()
        }
        fn golden(&self) -> darth_pum::Result<Vec<ExecOutput>> {
            let mut golden = GemmExec::standard().golden()?;
            golden[0].cells[2] += 1;
            golden[1].cells.pop();
            Ok(golden)
        }
    }

    #[test]
    fn mismatches_are_reported_cell_by_cell() {
        let report = DiffHarness::new()
            .with_case(DiffCase::exec_only(Corrupt))
            .verify()
            .expect("runs");
        assert!(!report.all_exact());
        let case = &report.cases[0];
        // One corrupted value plus one missing trailing cell.
        assert_eq!(case.mismatches.len(), 2);
        assert_eq!(case.mismatches[0].output, "row-0");
        assert_eq!(case.mismatches[0].index, 2);
        assert_eq!(case.mismatches[0].expected, case.mismatches[0].got + 1);
        assert!(report.summary().contains("MISMATCHED"));
        assert_eq!(report.total_mismatches(), 2);
    }
}
