//! The fast execution path: packed bit-planes, precompiled dispatch,
//! sharded tiles.
//!
//! Three independent speedups compose here, every one pinned to the
//! reference interpreter by the differential suite:
//!
//! 1. **Packed bit-planes** — [`FastMachine`] instantiates a
//!    [`darth_pum::chip::FastChip`], whose DCE pipelines store each
//!    bit-plane column as `u64` words
//!    ([`darth_digital::PackedPipeline`]), so a gate program evaluates 64
//!    cells per bitwise op instead of one.
//! 2. **Precompiled dispatch** — jobs compile once into a
//!    [`CompiledProgram`] jump table
//!    ([`darth_pum::chip::GenericChip::compile`]); decode, operand casts
//!    and the instruction `match` are paid per program, not per dynamic
//!    instruction.
//! 3. **Sharded tiles** — [`FastExecutor::execute_batch`] spreads
//!    independent tile jobs across `std::thread::scope` workers over
//!    disjoint output slices (no locks, no shared mutable state), reusing
//!    the eval engine's worker convention: an explicit
//!    [`FastExecutor::with_workers`] override, else `DARTH_EVAL_THREADS`
//!    ([`darth_pum::workers::forced_workers`]), else one worker per
//!    available core. Results are bit-identical at any worker count.

use crate::machine::{read_chip_output, SimStats, StatExecutor};
use darth_digital::PackedPipeline;
use darth_isa::instruction::Program;
use darth_pum::chip::{CompiledProgram, FastChip, SideChannel};
use darth_pum::eval::{ExecJob, ExecOutput, ExecRun, Executor, Readback};
use darth_pum::hct::HctConfig;
use darth_pum::params::ChipParams;
use darth_pum::workers::forced_workers;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

/// Process-wide count of [`FastMachine::new`] tile constructions.
///
/// Clones are deliberately *not* counted: the whole point of the
/// prototype caches is that stamping a machine out of a warm prototype
/// skips tile construction, and tests pin that by watching this counter
/// stand still.
static CONSTRUCTIONS: AtomicU64 = AtomicU64::new(0);

/// A fast functional machine: the packed-pipeline twin of
/// [`crate::SimMachine`], executing precompiled programs.
///
/// `Clone` copies the full machine state; a clone of a freshly built
/// machine is indistinguishable from calling [`FastMachine::new`] again
/// with the same config (construction is deterministic, RNG seed
/// included), which is what lets the batch executor stamp out per-job
/// machines from a prototype instead of rebuilding the tile each time.
#[derive(Debug, Clone)]
pub struct FastMachine {
    chip: FastChip,
    histogram: BTreeMap<&'static str, u64>,
}

impl FastMachine {
    /// Builds a machine around one functional tile.
    ///
    /// # Errors
    ///
    /// Propagates tile construction errors.
    pub fn new(tile: HctConfig) -> darth_pum::Result<Self> {
        CONSTRUCTIONS.fetch_add(1, Ordering::Relaxed);
        Ok(FastMachine {
            chip: FastChip::new(ChipParams::default(), tile)?,
            histogram: BTreeMap::new(),
        })
    }

    /// Process-wide count of tile constructions via [`FastMachine::new`].
    /// Clones of an existing machine do **not** count — that is the
    /// invariant the prototype caches exist to exploit, and what
    /// construction-count regression tests pin.
    pub fn constructions() -> u64 {
        CONSTRUCTIONS.load(Ordering::Relaxed)
    }

    /// The underlying chip (state inspection).
    pub fn chip(&self) -> &FastChip {
        &self.chip
    }

    /// Mutable chip access (host staging between runs).
    pub fn chip_mut(&mut self) -> &mut FastChip {
        &mut self.chip
    }

    /// Precompiles a decoded program into the fast chip's jump table.
    pub fn compile(program: &Program) -> CompiledProgram<PackedPipeline> {
        FastChip::compile(program)
    }

    /// Executes a precompiled program, reporting the same per-run
    /// statistics as [`crate::SimMachine::run`] — the executed prefix's
    /// mnemonic histogram is precomputed by the compiler, so a run only
    /// clones it.
    ///
    /// # Errors
    ///
    /// Returns the first execution error.
    pub fn run_compiled(
        &mut self,
        program: &CompiledProgram<PackedPipeline>,
        data: &SideChannel,
    ) -> darth_pum::Result<SimStats> {
        let busy_before = self.chip.tile().busy_cycles();
        let energy_before = self.chip.energy_meter().total();
        let run = self.chip.run_compiled(program, data)?;
        // Interned `&'static str` keys: merging into the lifetime
        // histogram is entry-API on `Copy` keys — no per-run key clones.
        let histogram = program.histogram().clone();
        for (&mnemonic, count) in &histogram {
            *self.histogram.entry(mnemonic).or_insert(0) += count;
        }
        Ok(SimStats {
            run,
            histogram,
            busy_cycles: self.chip.tile().busy_cycles().saturating_sub(busy_before),
            energy: self.chip.energy_meter().total() - energy_before,
        })
    }

    /// Executed instructions by mnemonic, across all runs so far.
    pub fn histogram(&self) -> &BTreeMap<&'static str, u64> {
        &self.histogram
    }

    /// Reads one output location from the finished machine.
    ///
    /// # Errors
    ///
    /// Returns pipeline/register range errors.
    pub fn read_output(&mut self, readback: &Readback) -> darth_pum::Result<ExecOutput> {
        read_chip_output(&mut self.chip, readback)
    }
}

/// An [`ExecJob`] decoded, precompiled **and** tile-constructed exactly
/// once by [`FastExecutor::prepare`]; reusable across runs.
///
/// Besides the compiled jump table, the handle carries a never-run
/// prototype [`FastMachine`] for the job's tile config:
/// [`FastExecutor::run_prepared`] clones it instead of rebuilding the
/// tile per call, the same trick the batch path's per-worker prototype
/// cache uses ([`FastMachine::constructions`] pins it).
#[derive(Debug)]
pub struct PreparedFastJob<'j> {
    job: &'j ExecJob,
    compiled: CompiledProgram<PackedPipeline>,
    prototype: FastMachine,
}

impl PreparedFastJob<'_> {
    /// The compiled jump table.
    pub fn compiled(&self) -> &CompiledProgram<PackedPipeline> {
        &self.compiled
    }

    /// The never-run prototype machine runs are cloned from.
    pub fn prototype(&self) -> &FastMachine {
        &self.prototype
    }
}

/// The fast-path [`Executor`]: packed pipelines, precompiled dispatch,
/// and batch sharding — bit-identical to [`crate::SimExecutor`] (the
/// differential suite enforces it).
#[derive(Debug, Clone, Default)]
pub struct FastExecutor {
    workers: Option<usize>,
}

impl FastExecutor {
    /// An executor using the default worker selection
    /// (`DARTH_EVAL_THREADS`, else available parallelism).
    pub fn new() -> Self {
        FastExecutor::default()
    }

    /// Forces a fixed worker count for [`FastExecutor::execute_batch`],
    /// overriding the environment (determinism tests pin {1, 2, …} this
    /// way without racing on the process environment).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// The worker count a batch of `jobs` runs on: the explicit override,
    /// else `DARTH_EVAL_THREADS`, else one per available core — never
    /// more than there are jobs.
    fn worker_count(&self, jobs: usize) -> usize {
        self.workers
            .or_else(|| forced_workers("DARTH_EVAL_THREADS"))
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, usize::from))
            .max(1)
            .min(jobs.max(1))
    }

    /// Decodes and precompiles `job`'s instruction stream — the
    /// compile-only half of [`FastExecutor::prepare`], shared with the
    /// batch path so batch jobs never build a per-job prototype machine.
    ///
    /// # Errors
    ///
    /// Returns decode errors for malformed records.
    fn compile_job(job: &ExecJob) -> darth_pum::Result<CompiledProgram<PackedPipeline>> {
        let program = job.decoded_program()?;
        Ok(FastChip::compile(&program))
    }

    /// Decodes, precompiles and tile-constructs `job` once into a
    /// reusable handle; repeated [`FastExecutor::run_prepared`] calls
    /// clone the handle's prototype machine instead of rebuilding the
    /// tile.
    ///
    /// # Errors
    ///
    /// Returns decode errors for malformed records and tile construction
    /// errors.
    pub fn prepare<'j>(&self, job: &'j ExecJob) -> darth_pum::Result<PreparedFastJob<'j>> {
        Ok(PreparedFastJob {
            job,
            compiled: Self::compile_job(job)?,
            prototype: FastMachine::new(job.tile.clone())?,
        })
    }

    /// Runs a prepared job on a machine cloned from the handle's
    /// prototype — no re-decode, no re-compile, no tile re-construction —
    /// returning outputs and the run's statistics. A clone of a never-run
    /// machine is identical to a newly built one, so results match a
    /// fresh-machine run bit for bit.
    ///
    /// # Errors
    ///
    /// Returns the first execution or readback error.
    pub fn run_prepared(
        &self,
        prepared: &PreparedFastJob<'_>,
    ) -> darth_pum::Result<(ExecRun, SimStats)> {
        Self::run_on(prepared.prototype.clone(), prepared)
    }

    /// Runs `compiled` for `job` on a fresh machine supplied by the
    /// caller (built or cloned from a prototype — both yield identical
    /// state).
    fn run_on(
        mut machine: FastMachine,
        prepared: &PreparedFastJob<'_>,
    ) -> darth_pum::Result<(ExecRun, SimStats)> {
        Self::run_machine(&mut machine, prepared.job, &prepared.compiled)
    }

    /// The shared run core: executes a compiled program for `job` on
    /// `machine` and reads the job's outputs back.
    fn run_machine(
        machine: &mut FastMachine,
        job: &ExecJob,
        compiled: &CompiledProgram<PackedPipeline>,
    ) -> darth_pum::Result<(ExecRun, SimStats)> {
        let stats = machine.run_compiled(compiled, &job.data)?;
        let outputs = job
            .readbacks
            .iter()
            .map(|rb| machine.read_output(rb))
            .collect::<darth_pum::Result<_>>()?;
        Ok((
            ExecRun {
                outputs,
                instructions: stats.run.instructions,
                analog_instructions: stats.run.analog_instructions,
            },
            stats,
        ))
    }

    fn run_one(&self, job: &ExecJob) -> darth_pum::Result<(ExecRun, SimStats)> {
        let prepared = self.prepare(job)?;
        self.run_prepared(&prepared)
    }

    /// [`FastExecutor::run_one`] with a per-worker prototype machine:
    /// when consecutive jobs share a tile config (the bulk-sweep common
    /// case), the fresh machine is cloned from the prototype instead of
    /// rebuilt, skipping tile construction. A clone of a never-run
    /// machine is identical to a newly built one, so results don't
    /// change.
    fn run_one_cached(
        &self,
        job: &ExecJob,
        proto: &mut Option<(HctConfig, FastMachine)>,
    ) -> darth_pum::Result<(ExecRun, SimStats)> {
        let compiled = Self::compile_job(job)?;
        if !proto.as_ref().is_some_and(|(cfg, _)| *cfg == job.tile) {
            *proto = Some((job.tile.clone(), FastMachine::new(job.tile.clone())?));
        }
        let mut machine = proto.as_ref().expect("prototype was just set").1.clone();
        Self::run_machine(&mut machine, job, &compiled)
    }

    /// Executes a batch of independent tile jobs, sharded across
    /// `std::thread::scope` workers over disjoint output chunks. Every
    /// job gets its own fresh machine, so there is no shared mutable
    /// state and results (outputs *and* statistics) are byte-identical
    /// at any worker count. Results come back in job order.
    ///
    /// # Errors
    ///
    /// Returns the first failing job's error, in job order.
    pub fn execute_batch_with_stats(
        &self,
        jobs: &[ExecJob],
    ) -> darth_pum::Result<Vec<(ExecRun, SimStats)>> {
        let workers = self.worker_count(jobs.len());
        let mut results: Vec<Option<darth_pum::Result<(ExecRun, SimStats)>>> =
            jobs.iter().map(|_| None).collect();
        let chunk = jobs.len().div_ceil(workers).max(1);
        thread::scope(|scope| {
            for (job_chunk, out_chunk) in jobs.chunks(chunk).zip(results.chunks_mut(chunk)) {
                scope.spawn(move || {
                    let mut proto = None;
                    for (slot, job) in out_chunk.iter_mut().zip(job_chunk) {
                        *slot = Some(self.run_one_cached(job, &mut proto));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|slot| slot.expect("every job chunk was executed"))
            .collect()
    }

    /// [`FastExecutor::execute_batch_with_stats`] without the statistics.
    ///
    /// # Errors
    ///
    /// As [`FastExecutor::execute_batch_with_stats`].
    pub fn execute_batch(&self, jobs: &[ExecJob]) -> darth_pum::Result<Vec<ExecRun>> {
        Ok(self
            .execute_batch_with_stats(jobs)?
            .into_iter()
            .map(|(run, _)| run)
            .collect())
    }
}

impl Executor for FastExecutor {
    fn name(&self) -> String {
        "darth-sim-fast".into()
    }

    fn label(&self) -> String {
        "DARTH-PUM fast-path simulator (packed bit-planes)".into()
    }

    fn execute(&self, job: &ExecJob) -> darth_pum::Result<ExecRun> {
        self.run_one(job).map(|(run, _)| run)
    }
}

impl StatExecutor for FastExecutor {
    fn execute_with_stats(&self, job: &ExecJob) -> darth_pum::Result<(ExecRun, SimStats)> {
        self.run_one(job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::SimExecutor;
    use darth_isa::asm::assemble;
    use darth_isa::encode::encode_program;

    fn digital_job(value: u64) -> ExecJob {
        let program = assemble(&format!(
            "wimm p0 v0 0 {value}\n\
             wimm p0 v1 0 17\n\
             add p0 v2 v0 v1\n\
             xor p0 v3 v0 v1\n\
             halt\n"
        ))
        .expect("parses");
        ExecJob {
            name: format!("digital-{value}"),
            tile: HctConfig::small_test(),
            program: encode_program(&program),
            data: SideChannel::new(),
            readbacks: vec![
                Readback {
                    label: "sum".into(),
                    pipe: 0,
                    vr: 2,
                    elements: 1,
                    signed: false,
                },
                Readback {
                    label: "xor".into(),
                    pipe: 0,
                    vr: 3,
                    elements: 1,
                    signed: false,
                },
            ],
        }
    }

    #[test]
    fn fast_executor_matches_reference_outputs_and_stats() {
        let job = digital_job(25);
        let (ref_run, ref_stats) = SimExecutor::new()
            .execute_with_stats(&job)
            .expect("reference runs");
        let (fast_run, fast_stats) = FastExecutor::new()
            .execute_with_stats(&job)
            .expect("fast runs");
        assert_eq!(ref_run, fast_run);
        assert_eq!(ref_stats, fast_stats);
        assert_eq!(fast_run.outputs[0].cells, vec![42]);
        assert_eq!(fast_run.outputs[1].cells, vec![25 ^ 17]);
    }

    #[test]
    fn prepared_fast_jobs_rerun_identically() {
        let job = digital_job(9);
        let executor = FastExecutor::new();
        let prepared = executor.prepare(&job).expect("compiles");
        let (first_run, first_stats) = executor.run_prepared(&prepared).expect("runs");
        let (second_run, second_stats) = executor.run_prepared(&prepared).expect("runs");
        assert_eq!(first_run, second_run);
        assert_eq!(first_stats, second_stats);
    }

    #[test]
    fn batch_results_preserve_job_order() {
        let jobs: Vec<ExecJob> = (0..5).map(|i| digital_job(i + 1)).collect();
        let runs = FastExecutor::new()
            .with_workers(2)
            .execute_batch(&jobs)
            .expect("runs");
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(run.outputs[0].cells, vec![i as i64 + 1 + 17], "job {i}");
        }
    }

    #[test]
    fn batch_surfaces_the_first_error() {
        let mut bad = digital_job(1);
        bad.program = vec![0xEE; 16];
        let jobs = vec![digital_job(2), bad];
        let err = FastExecutor::new()
            .with_workers(2)
            .execute_batch(&jobs)
            .unwrap_err();
        assert!(matches!(err, darth_pum::Error::Isa(_)));
    }
}
