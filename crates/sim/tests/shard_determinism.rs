//! Sharding determinism: a batch run on the fast executor must produce
//! byte-identical readbacks **and statistics** at every worker count —
//! serial, multi-threaded, environment-selected, and the garbage-value
//! fallback path.
//!
//! Everything lives in ONE `#[test]` on purpose: the
//! `DARTH_EVAL_THREADS` probes mutate the process environment, and a
//! single test body is the only way to keep those mutations strictly
//! sequential without cross-test races (the explicit worker counts use
//! the `with_workers` override precisely so they *don't* need the
//! environment).

use darth_sim::{bulk_aes_cases, FastExecutor};

#[test]
fn batch_results_are_identical_at_every_worker_count() {
    let jobs: Vec<_> = bulk_aes_cases(6)
        .iter()
        .map(|case| case.executable.job().expect("compiles"))
        .collect();

    // Serial baseline: one worker, no environment involved.
    let baseline = FastExecutor::new()
        .with_workers(1)
        .execute_batch_with_stats(&jobs)
        .expect("serial batch runs");
    assert_eq!(baseline.len(), jobs.len());

    // Two workers: jobs split across threads, same bytes and stats.
    let two = FastExecutor::new()
        .with_workers(2)
        .execute_batch_with_stats(&jobs)
        .expect("two-worker batch runs");
    assert_eq!(baseline, two, "two workers diverged from serial");

    // More workers than jobs: the executor clamps, results unchanged.
    let many = FastExecutor::new()
        .with_workers(64)
        .execute_batch_with_stats(&jobs)
        .expect("64-worker batch runs");
    assert_eq!(baseline, many, "worker clamp diverged from serial");

    // Environment-selected count (the production path).
    std::env::set_var("DARTH_EVAL_THREADS", "2");
    let from_env = FastExecutor::new()
        .execute_batch_with_stats(&jobs)
        .expect("env-selected batch runs");
    assert_eq!(baseline, from_env, "DARTH_EVAL_THREADS=2 diverged");

    // Garbage value: the executor warns, falls back to automatic worker
    // selection, and still produces identical results.
    std::env::set_var("DARTH_EVAL_THREADS", "4x");
    let fallback = FastExecutor::new()
        .execute_batch_with_stats(&jobs)
        .expect("fallback batch runs");
    assert_eq!(baseline, fallback, "garbage-env fallback diverged");

    std::env::remove_var("DARTH_EVAL_THREADS");
}
