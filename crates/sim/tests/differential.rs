//! The tier-1 differential gate: every standard case — AES-128/192/256
//! on FIPS-197 vectors, the integer GEMM, the convolution layer, the
//! PrIM-style reduction — must execute on the functional simulator and
//! match its golden software reference **bit-exactly, cell by cell**,
//! while the paired priced twin flows through the analytical cost model
//! from the same registry row.
//!
//! `make sim-verify` (part of `make verify`) runs exactly this file; a
//! single differing cell fails the build with the full mismatch list.

use darth_analog::adc::AdcKind;
use darth_apps::aes::golden::KeySize;
use darth_apps::aes::program::AesExec;
use darth_pum::eval::{Executable, Executor};
use darth_pum::model::DarthModel;
use darth_sim::{DiffCase, DiffHarness, SimExecutor};

#[test]
fn standard_registry_is_bit_exact_on_the_simulator() {
    let report = DiffHarness::standard().verify().expect("harness runs");
    assert_eq!(report.executor, "darth-sim");
    assert_eq!(
        report.cases.len(),
        7,
        "registry shrank:\n{}",
        report.summary()
    );
    assert!(
        report.all_exact(),
        "golden-model mismatch:\n{}\n{:#?}",
        report.summary(),
        report
            .cases
            .iter()
            .flat_map(|c| c.mismatches.iter())
            .collect::<Vec<_>>()
    );
    // The comparison must actually cover cells: 4 AES ciphertexts of 16
    // bytes each, GEMM is 4×10, conv is 4 pixels × 3 channels, reduce is
    // one scalar sum.
    assert_eq!(report.total_cells(), 4 * 16 + 40 + 12 + 1);
    // Every case really executed instructions, and every job crossed the
    // analog domain (`progm` + at least one `mvm`).
    for case in &report.cases {
        assert!(case.instructions > 0, "{} ran nothing", case.name);
        assert!(
            case.analog_instructions >= 2,
            "{} never touched the ACE",
            case.name
        );
    }
}

#[test]
fn every_case_is_simultaneously_priced_and_executed() {
    let model = DarthModel::paper(AdcKind::Sar);
    let report = DiffHarness::standard()
        .verify_priced(&model)
        .expect("harness runs");
    assert!(report.all_exact(), "{}", report.summary());
    for case in &report.cases {
        let cost = case
            .cost
            .as_ref()
            .unwrap_or_else(|| panic!("{} has no priced twin", case.name));
        assert!(
            cost.latency_s > 0.0 && cost.energy_per_item_j > 0.0,
            "{} priced to nothing",
            case.name
        );
    }
}

#[test]
fn aes_fips197_appendix_c_ciphertexts_are_the_published_ones() {
    // Belt and braces: check the simulator's bytes against the FIPS-197
    // constants directly, independent of the golden model.
    let expected: [(KeySize, [u8; 4]); 3] = [
        (KeySize::Aes128, [0x69, 0xc4, 0xe0, 0xd8]),
        (KeySize::Aes192, [0xdd, 0xa9, 0x7c, 0xa4]),
        (KeySize::Aes256, [0x8e, 0xa2, 0xb7, 0xca]),
    ];
    for (size, head) in expected {
        let run = SimExecutor::new()
            .execute(&AesExec::fips197_appendix_c(size).job().expect("compiles"))
            .expect("executes");
        let got: Vec<i64> = run.outputs[0].cells[..4].to_vec();
        let want: Vec<i64> = head.iter().map(|&b| i64::from(b)).collect();
        assert_eq!(got, want, "{size:?}");
    }
}

#[test]
fn a_corrupted_golden_model_is_caught() {
    // Negative control: the harness must be able to fail.
    struct Corrupt;
    impl Executable for Corrupt {
        fn exec_name(&self) -> String {
            "corrupt-aes".into()
        }
        fn job(&self) -> darth_pum::Result<darth_pum::eval::ExecJob> {
            AesExec::fips197_appendix_b().job()
        }
        fn golden(&self) -> darth_pum::Result<Vec<darth_pum::eval::ExecOutput>> {
            let mut golden = AesExec::fips197_appendix_b().golden()?;
            golden[0].cells[0] ^= 0xFF;
            Ok(golden)
        }
    }
    let report = DiffHarness::new()
        .with_case(DiffCase::exec_only(Corrupt))
        .verify()
        .expect("harness runs");
    assert!(!report.all_exact());
    assert_eq!(report.total_mismatches(), 1);
    assert_eq!(report.cases[0].mismatches[0].index, 0);
}
