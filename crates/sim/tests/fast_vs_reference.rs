//! The fast-path acceptance gate: [`FastExecutor`] must be **fully
//! equivalent** to the reference [`SimExecutor`] — bit-identical output
//! cells *and* identical statistics (instruction counts, per-mnemonic
//! histograms, busy cycles, energy) — on the complete standard registry
//! and on a scaled bulk-AES workload.
//!
//! `make sim-verify` runs this file in release mode with the bulk block
//! count raised to 1000+ (`DARTH_SIM_BULK_BLOCKS`); under plain
//! `cargo test` (debug) the count drops so the reference interpreter
//! stays within budget. Negative controls prove the pair harness can
//! actually fail, on corrupted outputs and on corrupted statistics.

use darth_sim::{bulk_aes_cases, DiffHarness, FastExecutor, SimExecutor, SimStats, StatExecutor};

use darth_pum::eval::{ExecJob, ExecRun, Executor};

/// Bulk-AES block count: env override, else scaled to the build profile
/// (the reference interpreter is the bottleneck in debug builds).
fn bulk_blocks() -> usize {
    if let Ok(raw) = std::env::var("DARTH_SIM_BULK_BLOCKS") {
        return raw
            .trim()
            .parse()
            .expect("DARTH_SIM_BULK_BLOCKS must be a positive integer");
    }
    if cfg!(debug_assertions) {
        16
    } else {
        1000
    }
}

#[test]
fn fast_executor_is_equivalent_on_the_full_standard_registry() {
    let report = DiffHarness::standard()
        .verify_pair(&SimExecutor::new(), &FastExecutor::new())
        .expect("pair harness runs");
    assert_eq!(report.reference, "darth-sim");
    assert_eq!(report.candidate, "darth-sim-fast");
    assert_eq!(
        report.cases.len(),
        7,
        "registry shrank:\n{}",
        report.summary()
    );
    assert!(
        report.all_exact(),
        "fast path diverged from the reference:\n{}\n{:#?}",
        report.summary(),
        report
            .cases
            .iter()
            .filter(|c| !c.is_exact())
            .collect::<Vec<_>>()
    );
    // Statistics comparison must have real content: every case executed
    // instructions and produced a non-empty histogram on both sides.
    for case in &report.cases {
        assert!(case.reference_stats.run.instructions > 0, "{}", case.name);
        assert!(!case.reference_stats.histogram.is_empty(), "{}", case.name);
        assert_eq!(case.reference_stats, case.candidate_stats, "{}", case.name);
    }
}

#[test]
fn fast_executor_matches_the_golden_models_directly() {
    // Not just reference-equivalent: the fast path must also match the
    // golden software references on its own.
    let report = DiffHarness::standard()
        .with_executor(FastExecutor::new())
        .verify()
        .expect("harness runs");
    assert_eq!(report.executor, "darth-sim-fast");
    assert!(
        report.all_exact(),
        "fast path diverged from golden:\n{}",
        report.summary()
    );
}

#[test]
fn bulk_aes_blocks_are_equivalent_at_scale() {
    let blocks = bulk_blocks();
    let mut harness = DiffHarness::new();
    for case in bulk_aes_cases(blocks) {
        harness = harness.with_case(case);
    }
    let report = harness
        .verify_pair(&SimExecutor::new(), &FastExecutor::new())
        .expect("pair harness runs");
    assert_eq!(report.cases.len(), blocks);
    // 16 ciphertext bytes per block, all compared.
    assert_eq!(report.total_cells(), blocks * 16);
    assert!(
        report.all_exact(),
        "bulk AES diverged ({blocks} blocks):\n{}",
        report.summary()
    );
}

/// A deliberately broken fast path: outputs with one cell flipped.
struct CorruptedOutputs(FastExecutor);

impl Executor for CorruptedOutputs {
    fn name(&self) -> String {
        "corrupted-outputs".into()
    }
    fn execute(&self, job: &ExecJob) -> darth_pum::Result<ExecRun> {
        self.0.execute(job)
    }
}

impl StatExecutor for CorruptedOutputs {
    fn execute_with_stats(&self, job: &ExecJob) -> darth_pum::Result<(ExecRun, SimStats)> {
        let (mut run, stats) = self.0.execute_with_stats(job)?;
        run.outputs[0].cells[0] ^= 0x1;
        Ok((run, stats))
    }
}

/// A fast path that computes the right cells but misreports what it
/// executed: the histogram drops one op.
struct CorruptedStats(FastExecutor);

impl Executor for CorruptedStats {
    fn name(&self) -> String {
        "corrupted-stats".into()
    }
    fn execute(&self, job: &ExecJob) -> darth_pum::Result<ExecRun> {
        self.0.execute(job)
    }
}

impl StatExecutor for CorruptedStats {
    fn execute_with_stats(&self, job: &ExecJob) -> darth_pum::Result<(ExecRun, SimStats)> {
        let (run, mut stats) = self.0.execute_with_stats(job)?;
        let key = *stats
            .histogram
            .keys()
            .next()
            .expect("ran at least one instruction");
        stats.histogram.remove(key);
        Ok((run, stats))
    }
}

#[test]
fn a_corrupted_fast_path_is_caught() {
    let mut harness = DiffHarness::new();
    for case in bulk_aes_cases(1) {
        harness = harness.with_case(case);
    }

    // Flipped output cell: cells mismatch even though stats agree.
    let report = harness
        .verify_pair(&SimExecutor::new(), &CorruptedOutputs(FastExecutor::new()))
        .expect("pair harness runs");
    assert!(!report.all_exact());
    assert_eq!(report.cases[0].mismatches.len(), 1);
    assert!(report.cases[0].stats_match);
    assert!(report.summary().contains("MISMATCHED"));

    // Dropped histogram entry: outputs agree but stats diverge.
    let report = harness
        .verify_pair(&SimExecutor::new(), &CorruptedStats(FastExecutor::new()))
        .expect("pair harness runs");
    assert!(!report.all_exact());
    assert!(report.cases[0].mismatches.is_empty());
    assert!(!report.cases[0].stats_match);
    assert!(report.summary().contains("STATS DIVERGED"));
}
