//! Noise-path determinism on the fast executor.
//!
//! Two contracts pin the Monte-Carlo accuracy engine's foundations:
//!
//! 1. **Reproducibility** — a noise-injected trial is a pure function of
//!    its tile seed: running the same job twice, or inside batches
//!    sharded across 1/2/64 workers, produces byte-identical outputs for
//!    *any* seed (property-tested over random seeds).
//! 2. **Inertness** — a `noisy = false` execution consumes zero RNG
//!    draws on the full path (compile → run → readback): the tile's ACE
//!    stream must still sit at its freshly-seeded state afterwards, so
//!    ideal results can never depend on the seed.

use darth_apps::aes::program::AesExec;
use darth_apps::cnn::program::ConvExec;
use darth_apps::gemm::GemmExec;
use darth_apps::reduce::ReduceExec;
use darth_pum::{ExecJob, Executable};
use darth_reram::NoiseRng;
use darth_sim::{FastExecutor, FastMachine};
use proptest::prelude::*;

/// The workload's job with evaluation-grade noise injected at `seed`.
fn noisy_job(exec: &dyn Executable, seed: u64) -> ExecJob {
    let mut job = exec.job().expect("job compiles");
    job.tile.noisy = true;
    job.tile.seed = seed;
    job.tile.program_sigma = 0.02;
    job.tile.read_sigma = 0.005;
    job.tile.ir_drop_alpha = 0.0008;
    job
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn noisy_trials_are_bit_identical_for_any_seed(seed in 0u64..u64::MAX) {
        let gemm = GemmExec::standard();
        let reduce = ReduceExec::standard();
        // Two distinct programs plus a seed-sibling of the first: the
        // batch shards unevenly at every tested worker count.
        let jobs = vec![
            noisy_job(&gemm, seed),
            noisy_job(&reduce, seed ^ 0x9E37_79B9_7F4A_7C15),
            noisy_job(&gemm, seed.wrapping_add(1)),
        ];

        let baseline = FastExecutor::new()
            .with_workers(1)
            .execute_batch(&jobs)
            .expect("serial batch runs");
        let again = FastExecutor::new()
            .with_workers(1)
            .execute_batch(&jobs)
            .expect("serial rerun runs");
        prop_assert_eq!(&again, &baseline);

        for workers in [2_usize, 64] {
            let sharded = FastExecutor::new()
                .with_workers(workers)
                .execute_batch(&jobs)
                .expect("sharded batch runs");
            prop_assert_eq!(&sharded, &baseline);
        }
    }
}

#[test]
fn noise_off_executions_consume_zero_rng_draws() {
    let execs: Vec<Box<dyn Executable>> = vec![
        Box::new(AesExec::fips197_appendix_b()),
        Box::new(GemmExec::standard()),
        Box::new(ConvExec::standard()),
        Box::new(ReduceExec::standard()),
    ];
    for exec in execs {
        let job = exec.job().expect("job compiles");
        assert!(
            !job.tile.noisy,
            "{}: standard jobs are ideal",
            exec.exec_name()
        );

        let mut machine = FastMachine::new(job.tile.clone()).expect("tile is valid");
        let program = job.decoded_program().expect("program decodes");
        let compiled = FastMachine::compile(&program);
        machine
            .run_compiled(&compiled, &job.data)
            .expect("program runs");
        for readback in &job.readbacks {
            machine.read_output(readback).expect("readback succeeds");
        }

        assert_eq!(
            machine.chip().tile().ace().rng(),
            &NoiseRng::seed_from(job.tile.seed),
            "{}: ideal execution advanced the ACE noise stream",
            exec.exec_name()
        );
    }
}

#[test]
fn noisy_execution_advances_the_tile_rng() {
    let job = noisy_job(&GemmExec::standard(), 41);
    let mut machine = FastMachine::new(job.tile.clone()).expect("tile is valid");
    let program = job.decoded_program().expect("program decodes");
    let compiled = FastMachine::compile(&program);
    machine
        .run_compiled(&compiled, &job.data)
        .expect("program runs");
    assert_ne!(
        machine.chip().tile().ace().rng(),
        &NoiseRng::seed_from(job.tile.seed),
        "noisy execution must draw from the ACE noise stream"
    );
}
