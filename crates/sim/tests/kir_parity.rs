//! Parity regression for the kernel-IR compiler (`darth_kir`).
//!
//! PR 9 retired the hand-scheduled program emission in `darth_apps` and
//! rebuilt AES/GEMM/conv as IR builders compiled by the darth_kir
//! pipeline (verify → allocate → lower). This test pins the compiler's
//! output against the *hand-lowered* baselines captured immediately
//! before the refactor: per-mnemonic instruction histograms, analog-op
//! counts, busy cycles and energy from the reference simulator.
//!
//! Budget: ≤10% instruction-count overhead per mnemonic and ≤10%
//! relative drift on cycles/energy; analog ops must match exactly (they
//! are the workload's semantic ACE footprint, not a scheduling detail).
//! Measured reality as of this PR: the compiler reproduces every
//! baseline **exactly** — the 1-op-per-instruction lowering and
//! linear-scan allocator emit the same instruction mix the hand
//! schedules did (see the `BASELINES` table; the compiled numbers in the
//! assertions below were observed equal). The tolerance only exists so
//! future allocator/scheduler changes can trade a few instructions
//! without churning this file.

use darth_pum::eval::Executable;
use darth_sim::{SimExecutor, StatExecutor};
use std::collections::BTreeMap;

/// One hand-lowering baseline, captured on the pre-refactor tree
/// (`git` parent of this PR) with the same `SimExecutor`.
struct Baseline {
    name: &'static str,
    instructions: u64,
    analog: u64,
    cycles: u64,
    energy_pj: f64,
    histogram: &'static [(&'static str, u64)],
}

const BASELINES: &[Baseline] = &[
    Baseline {
        name: "aes-128/fips197-c",
        instructions: 1463,
        analog: 37,
        cycles: 66_376,
        energy_pj: 142_507.748288,
        histogram: &[
            ("and", 117),
            ("copy", 9),
            ("copyx", 129),
            ("eload", 128),
            ("halt", 1),
            ("mvm", 36),
            ("or", 63),
            ("progm", 1),
            ("shl", 63),
            ("shr", 72),
            ("valloc", 1),
            ("wimm", 832),
            ("xor", 11),
        ],
    },
    Baseline {
        name: "aes-192/fips197-c",
        instructions: 1633,
        analog: 45,
        cycles: 66_904,
        energy_pj: 154_439.692352,
        histogram: &[
            ("and", 143),
            ("copy", 11),
            ("copyx", 157),
            ("eload", 156),
            ("halt", 1),
            ("mvm", 44),
            ("or", 77),
            ("progm", 1),
            ("shl", 77),
            ("shr", 88),
            ("valloc", 1),
            ("wimm", 864),
            ("xor", 13),
        ],
    },
    Baseline {
        name: "aes-256/fips197-c",
        instructions: 1803,
        analog: 53,
        cycles: 67_432,
        energy_pj: 166_371.636416,
        histogram: &[
            ("and", 169),
            ("copy", 13),
            ("copyx", 185),
            ("eload", 184),
            ("halt", 1),
            ("mvm", 52),
            ("or", 91),
            ("progm", 1),
            ("shl", 91),
            ("shr", 104),
            ("valloc", 1),
            ("wimm", 896),
            ("xor", 15),
        ],
    },
    Baseline {
        name: "gemm-4x12x10-i8w4",
        instructions: 69,
        analog: 5,
        cycles: 140_776,
        energy_pj: 137_834.105024,
        histogram: &[
            ("add", 4),
            ("halt", 1),
            ("mvm", 4),
            ("progm", 1),
            ("valloc", 1),
            ("wimm", 58),
        ],
    },
    Baseline {
        name: "conv-2x4x3-k3",
        instructions: 86,
        analog: 5,
        cycles: 138_592,
        energy_pj: 123_187.152512,
        histogram: &[
            ("add", 4),
            ("halt", 1),
            ("mvm", 4),
            ("progm", 1),
            ("valloc", 1),
            ("wimm", 75),
        ],
    },
];

fn exec_for(name: &str) -> Box<dyn Executable> {
    use darth_apps::aes::golden::KeySize;
    use darth_apps::aes::program::AesExec;
    use darth_apps::cnn::program::ConvExec;
    use darth_apps::gemm::GemmExec;
    match name {
        "aes-128/fips197-c" => Box::new(AesExec::fips197_appendix_c(KeySize::Aes128)),
        "aes-192/fips197-c" => Box::new(AesExec::fips197_appendix_c(KeySize::Aes192)),
        "aes-256/fips197-c" => Box::new(AesExec::fips197_appendix_c(KeySize::Aes256)),
        "gemm-4x12x10-i8w4" => Box::new(GemmExec::standard()),
        "conv-2x4x3-k3" => Box::new(ConvExec::standard()),
        other => panic!("no baseline executable named {other}"),
    }
}

/// `got` within ±10% of `want` (and small counts cannot hide behind the
/// percentage: a budget below one instruction degenerates to equality).
fn within_ten_percent(want: u64, got: u64) -> bool {
    let slack = want / 10;
    got >= want.saturating_sub(slack) && got <= want + slack
}

#[test]
fn compiled_kernels_stay_within_ten_percent_of_the_hand_lowerings() {
    let executor = SimExecutor::new();
    for baseline in BASELINES {
        let exec = exec_for(baseline.name);
        let job = exec.job().expect("compiles");
        let (run, stats) = executor.execute_with_stats(&job).expect("executes");

        assert!(
            within_ten_percent(baseline.instructions, run.instructions),
            "{}: instruction count {} vs hand baseline {}",
            baseline.name,
            run.instructions,
            baseline.instructions
        );
        // The analog footprint is the workload's semantics, not a
        // scheduling artifact: exact or bust.
        assert_eq!(
            run.analog_instructions, baseline.analog,
            "{}: analog ops diverged from the hand lowering",
            baseline.name
        );

        let want: BTreeMap<&str, u64> = baseline.histogram.iter().copied().collect();
        let got: BTreeMap<&str, u64> = stats.histogram.iter().map(|(&k, &v)| (k, v)).collect();
        for (&mnemonic, &count) in &want {
            let actual = got.get(mnemonic).copied().unwrap_or(0);
            assert!(
                within_ten_percent(count, actual),
                "{}: {mnemonic} count {actual} vs hand baseline {count}",
                baseline.name
            );
        }
        for (&mnemonic, &actual) in &got {
            assert!(
                want.contains_key(mnemonic),
                "{}: compiler emits {actual} `{mnemonic}` the hand lowering never used",
                baseline.name
            );
        }

        let cycles = stats.busy_cycles.get();
        assert!(
            within_ten_percent(baseline.cycles, cycles),
            "{}: {cycles} busy cycles vs hand baseline {}",
            baseline.name,
            baseline.cycles
        );
        let energy = stats.energy.get();
        let drift = (energy - baseline.energy_pj).abs() / baseline.energy_pj;
        assert!(
            drift <= 0.10,
            "{}: {energy} pJ vs hand baseline {} pJ ({:.2}% drift)",
            baseline.name,
            baseline.energy_pj,
            drift * 100.0
        );
    }
}

#[test]
fn compiled_aes_is_instruction_exact_against_the_hand_baseline() {
    // The headline parity claim, pinned tighter than the 10% budget: the
    // AES-128 kernel's compiled histogram is *identical* to the hand
    // schedule's, mnemonic for mnemonic.
    let baseline = &BASELINES[0];
    let executor = SimExecutor::new();
    let job = exec_for(baseline.name).job().expect("compiles");
    let (run, stats) = executor.execute_with_stats(&job).expect("executes");
    assert_eq!(run.instructions, baseline.instructions);
    let got: BTreeMap<&str, u64> = stats.histogram.iter().map(|(&k, &v)| (k, v)).collect();
    let want: BTreeMap<&str, u64> = baseline.histogram.iter().copied().collect();
    assert_eq!(got, want);
}
