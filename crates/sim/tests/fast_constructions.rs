//! Pins the fast path's tile-construction amortization:
//! [`FastMachine::constructions`] counts `FastMachine::new` calls
//! process-wide (clones don't count), and this file is its own test
//! binary with exactly one `#[test]` so nothing else moves the counter
//! between the deltas asserted here.

use darth_sim::{FastExecutor, FastMachine};

mod common {
    use darth_isa::asm::assemble;
    use darth_isa::encode::encode_program;
    use darth_pum::chip::SideChannel;
    use darth_pum::eval::{ExecJob, Readback};
    use darth_pum::hct::HctConfig;

    pub fn digital_job(value: u64) -> ExecJob {
        let program = assemble(&format!(
            "wimm p0 v0 0 {value}\n\
             wimm p0 v1 0 17\n\
             add p0 v2 v0 v1\n\
             halt\n"
        ))
        .expect("parses");
        ExecJob {
            name: format!("digital-{value}"),
            tile: HctConfig::small_test(),
            program: encode_program(&program),
            data: SideChannel::new(),
            readbacks: vec![Readback {
                label: "sum".into(),
                pipe: 0,
                vr: 2,
                elements: 1,
                signed: false,
            }],
        }
    }
}

#[test]
fn prototype_caches_amortize_tile_construction() {
    let executor = FastExecutor::new().with_workers(1);

    // prepare() constructs the prototype once; N runs clone it.
    let job = common::digital_job(25);
    let before = FastMachine::constructions();
    let prepared = executor.prepare(&job).expect("compiles");
    assert_eq!(
        FastMachine::constructions() - before,
        1,
        "prepare builds exactly the prototype"
    );
    let (first, _) = executor.run_prepared(&prepared).expect("runs");
    for _ in 0..9 {
        let (run, _) = executor.run_prepared(&prepared).expect("runs");
        assert_eq!(run, first);
    }
    assert_eq!(
        FastMachine::constructions() - before,
        1,
        "10 run_prepared calls clone the prototype; none rebuild the tile"
    );
    assert_eq!(first.outputs[0].cells, vec![42]);

    // The batch path's per-worker prototype cache: N same-tile jobs on
    // one worker construct one machine total.
    let jobs: Vec<_> = (0..16).map(|i| common::digital_job(i + 1)).collect();
    let before = FastMachine::constructions();
    let runs = executor.execute_batch(&jobs).expect("runs");
    assert_eq!(
        FastMachine::constructions() - before,
        1,
        "a single-worker batch over one tile config builds one prototype"
    );
    for (i, run) in runs.iter().enumerate() {
        assert_eq!(run.outputs[0].cells, vec![i as i64 + 1 + 17], "job {i}");
    }
}
