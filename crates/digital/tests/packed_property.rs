//! Property tests for the packed `u64` bit-plane primitives.
//!
//! Every packed word-level gate op is checked against a scalar
//! `Vec<bool>` reference over randomized rows whose lengths
//! deliberately straddle word boundaries (1..=192 covers one, two and
//! three words plus every non-multiple-of-64 tail), so the tail-mask
//! invariant is exercised on each operation. Rows are derived from
//! sampled `u64` seeds through the deterministic test RNG, keeping
//! every failure reproducible from its printed seed.

use darth_digital::{BoolOp, PackedBits};
use proptest::prelude::*;

/// A random bool row of `len` bits from a deterministic seed.
fn random_row(seed: u64, len: usize) -> Vec<bool> {
    let mut rng = TestRng::seed_from(seed);
    let mut word = 0u64;
    (0..len)
        .map(|i| {
            if i % 64 == 0 {
                word = rng.next_u64();
            }
            (word >> (i % 64)) & 1 == 1
        })
        .collect()
}

/// The invariant every public op must restore: bits beyond `len` in the
/// last storage word stay zero.
fn assert_tail_masked(bits: &PackedBits) {
    let tail = bits.len() % 64;
    if tail != 0 {
        let last = *bits.words().last().expect("non-empty row has words");
        assert_eq!(last >> tail, 0, "tail bits leaked past len {}", bits.len());
    }
}

fn scalar_bool_op(op: BoolOp, a: bool, b: bool) -> bool {
    match op {
        BoolOp::Nor => !(a | b),
        BoolOp::Or => a | b,
        BoolOp::And => a & b,
        BoolOp::Nand => !(a & b),
        BoolOp::Xor => a ^ b,
        BoolOp::Xnor => !(a ^ b),
    }
}

const OPS: [BoolOp; 6] = [
    BoolOp::Nor,
    BoolOp::Or,
    BoolOp::And,
    BoolOp::Nand,
    BoolOp::Xor,
    BoolOp::Xnor,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn packed_gates_match_the_scalar_reference(
        seed in 0u64..u64::MAX,
        len in 1usize..193,
    ) {
        let a = random_row(seed, len);
        let b = random_row(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15), len);
        let pa = PackedBits::from_bools(&a);
        let pb = PackedBits::from_bools(&b);
        for op in OPS {
            let packed = pa.bool_op(op, &pb);
            let scalar: Vec<bool> = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| scalar_bool_op(op, x, y))
                .collect();
            prop_assert_eq!(packed.to_bools(), scalar);
            assert_tail_masked(&packed);
        }
    }

    #[test]
    fn packed_not_masks_its_tail(seed in 0u64..u64::MAX, len in 1usize..193) {
        let a = random_row(seed, len);
        let packed = PackedBits::from_bools(&a).not();
        let scalar: Vec<bool> = a.iter().map(|&x| !x).collect();
        prop_assert_eq!(packed.to_bools(), scalar);
        assert_tail_masked(&packed);
    }

    #[test]
    fn packed_shifts_match_the_scalar_reference(
        seed in 0u64..u64::MAX,
        len in 1usize..193,
        k in 0usize..200,
    ) {
        let a = random_row(seed, len);
        let packed = PackedBits::from_bools(&a);

        // shl: bit i moves to i + k, overflow past len drops.
        let mut shl_ref = vec![false; len];
        for (i, &bit) in a.iter().enumerate() {
            if bit && i + k < len {
                shl_ref[i + k] = true;
            }
        }
        let shl = packed.shl(k);
        prop_assert_eq!(shl.to_bools(), shl_ref);
        assert_tail_masked(&shl);

        // shr: bit i moves to i - k, underflow drops.
        let mut shr_ref = vec![false; len];
        for (i, &bit) in a.iter().enumerate() {
            if bit && i >= k {
                shr_ref[i - k] = true;
            }
        }
        let shr = packed.shr(k);
        prop_assert_eq!(shr.to_bools(), shr_ref);
        assert_tail_masked(&shr);
    }

    #[test]
    fn set_get_roundtrips_through_the_packed_words(
        seed in 0u64..u64::MAX,
        len in 1usize..193,
    ) {
        let row = random_row(seed, len);
        let mut packed = PackedBits::new(len);
        for (i, &bit) in row.iter().enumerate() {
            packed.set(i, bit);
        }
        for (i, &bit) in row.iter().enumerate() {
            prop_assert_eq!(packed.get(i), bit);
        }
        assert_tail_masked(&packed);
    }
}

/// Exhaustive pack → unpack identity over every row length that fits in
/// three words, including both word-aligned and ragged tails.
#[test]
fn pack_unpack_is_the_identity_for_every_length_to_192() {
    for len in 1usize..=192 {
        let row = random_row(len as u64 ^ 0xDEAD_BEEF, len);
        let packed = PackedBits::from_bools(&row);
        assert_eq!(packed.len(), len);
        assert_eq!(packed.to_bools(), row, "length {len}");
        assert_tail_masked(&packed);
        // An all-ones row stresses the tail mask hardest.
        let ones = PackedBits::from_bools(&vec![true; len]);
        assert_eq!(ones.to_bools(), vec![true; len], "ones length {len}");
        assert_tail_masked(&ones);
    }
}
