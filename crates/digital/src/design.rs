//! Digital-side design points for design-space exploration.
//!
//! The counterpart of `darth_analog::design::AceDesign`: a validated
//! coarse description of the digital compute element — pipeline count and
//! depth, array dimension, logic family — plus the tile clock, which the
//! DCE's bit-pipelining sets the critical path for. The
//! `darth_pum::config::DarthConfig` builder composes one of these with an
//! analog design point into a full chip configuration.

use crate::logic::LogicFamily;
use crate::{Error, Result};
use serde::{Deserialize, Serialize};

/// Largest pipeline count / depth / array dimension a design may request.
pub const MAX_DESIGN_DIM: usize = 4096;

/// Fastest clock a design may request, in GHz. The OSCAR primitive's
/// ReRAM switching time bounds realistic clocks well below this; the
/// ceiling only rejects nonsense.
pub const MAX_CLOCK_GHZ: f64 = 10.0;

/// One digital compute element design point (Table 2's DCE rows plus the
/// tile clock).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DceDesign {
    /// RACER pipelines per tile (Table 2: 64).
    pub pipelines: usize,
    /// Arrays per pipeline — the pipeline depth, which is the native
    /// operand bit width (Table 2: 64).
    pub pipeline_depth: usize,
    /// ReRAM array dimension: lanes per pipeline operation (Table 2:
    /// 64×64).
    pub array_dim: usize,
    /// Logic family the macro library expands to.
    pub family: LogicFamily,
    /// Tile clock in GHz (the paper models 1 GHz).
    pub clock_ghz: f64,
}

impl DceDesign {
    /// The paper's Table 2 digital configuration: 64 pipelines of depth
    /// 64 over 64×64 arrays, OSCAR logic, 1 GHz.
    pub fn paper() -> Self {
        DceDesign {
            pipelines: 64,
            pipeline_depth: 64,
            array_dim: 64,
            family: LogicFamily::Oscar,
            clock_ghz: 1.0,
        }
    }

    /// Validates the design point.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the pipeline count, depth or
    /// array dimension is zero or exceeds [`MAX_DESIGN_DIM`], or the
    /// clock is not in `(0, MAX_CLOCK_GHZ]`.
    pub fn validate(&self) -> Result<()> {
        if self.pipelines == 0 || self.pipelines > MAX_DESIGN_DIM {
            return Err(Error::InvalidConfig("DCE pipelines must be in 1..=4096"));
        }
        if self.pipeline_depth == 0 || self.pipeline_depth > MAX_DESIGN_DIM {
            return Err(Error::InvalidConfig(
                "DCE pipeline depth must be in 1..=4096",
            ));
        }
        if self.array_dim == 0 || self.array_dim > MAX_DESIGN_DIM {
            return Err(Error::InvalidConfig("DCE array dim must be in 1..=4096"));
        }
        if !(self.clock_ghz.is_finite() && self.clock_ghz > 0.0 && self.clock_ghz <= MAX_CLOCK_GHZ)
        {
            return Err(Error::InvalidConfig("clock must be in (0, 10] GHz"));
        }
        Ok(())
    }

    /// The clock in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_ghz * 1e9
    }

    /// The design point as `(key, value)` pairs for JSON reports.
    /// (Design-point *names* come from the sweep layer's axis slugs —
    /// `darth_eval::dse` — so there is exactly one naming scheme.)
    pub fn params(&self) -> Vec<(String, String)> {
        vec![
            ("dce_pipelines".to_owned(), self.pipelines.to_string()),
            (
                "dce_pipeline_depth".to_owned(),
                self.pipeline_depth.to_string(),
            ),
            ("dce_array_dim".to_owned(), self.array_dim.to_string()),
            ("logic_family".to_owned(), format!("{:?}", self.family)),
            ("clock_ghz".to_owned(), format!("{}", self.clock_ghz)),
        ]
    }
}

impl Default for DceDesign {
    fn default() -> Self {
        DceDesign::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_validates() {
        let d = DceDesign::paper();
        assert!(d.validate().is_ok());
        assert_eq!(d.clock_hz(), 1.0e9);
    }

    #[test]
    fn invalid_designs_are_rejected() {
        let paper = DceDesign::paper();
        for bad in [
            DceDesign {
                pipelines: 0,
                ..paper
            },
            DceDesign {
                pipeline_depth: MAX_DESIGN_DIM + 1,
                ..paper
            },
            DceDesign {
                array_dim: 0,
                ..paper
            },
            DceDesign {
                clock_ghz: 0.0,
                ..paper
            },
            DceDesign {
                clock_ghz: -1.0,
                ..paper
            },
            DceDesign {
                clock_ghz: f64::NAN,
                ..paper
            },
            DceDesign {
                clock_ghz: MAX_CLOCK_GHZ + 0.1,
                ..paper
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be invalid");
        }
    }

    #[test]
    fn params_name_pipelines_and_clock() {
        let mut d = DceDesign::paper();
        d.clock_ghz = 1.25;
        let params = d.params();
        assert_eq!(params.len(), 5);
        assert!(params.contains(&("clock_ghz".to_owned(), "1.25".to_owned())));
        assert!(params.contains(&("dce_pipelines".to_owned(), "64".to_owned())));
    }
}
