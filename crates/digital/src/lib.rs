//! Bit-pipelined digital processing-using-memory (RACER / OSCAR).
//!
//! Digital PUM (Section 2.2.2 of the DARTH-PUM paper) computes Boolean
//! primitives *inside* ReRAM arrays: driving two input bitlines and an
//! output bitline with the OSCAR voltages flips the output device to the
//! NOR of the inputs, for every row of the array in parallel. Chaining
//! primitives realises arbitrary functions, and RACER's *bit-pipelining*
//! recovers throughput by striping each bit position of a value into its own
//! array so that different bit positions execute different operations
//! concurrently.
//!
//! This crate provides:
//!
//! * [`logic`] — logic families: [`logic::LogicFamily::Oscar`] (NOR and OR
//!   primitives with output-preset semantics) and
//!   [`logic::LogicFamily::Ideal`] (any two-input Boolean op in one cycle;
//!   the Figure 7 ablation).
//! * [`mod@array`] — a digital PUM array: column-parallel gate execution over a
//!   [`darth_reram::ReramArray`] in SLC mode.
//! * [`pipeline`] — a RACER pipeline: `depth` arrays, bit-striped vector
//!   registers, inter-array carry movement, element-wise load/store, and
//!   pipeline reversal.
//! * [`macros`] — the NOR-only macro library (ADD, SUB, XOR, MUL, shifts,
//!   comparisons, ReLU, …) with per-macro primitive counts that drive both
//!   the functional simulation and the analytical timing model.
//! * [`timing`] — the bit-pipelining cost model (stage cycles, warm-up,
//!   drain) shared with the chip-level simulator.
//! * [`design`] — validated coarse design points ([`DceDesign`]) for the
//!   design-space sweeps: pipeline count/depth, array dimension, logic
//!   family and tile clock in one object.
//!
//! # Example: 8-bit vector add on a RACER pipeline
//!
//! ```
//! use darth_digital::logic::LogicFamily;
//! use darth_digital::pipeline::{Pipeline, PipelineConfig};
//!
//! # fn main() -> Result<(), darth_digital::Error> {
//! let mut pipe = Pipeline::new(PipelineConfig {
//!     depth: 8,
//!     family: LogicFamily::Oscar,
//!     ..PipelineConfig::default()
//! })?;
//! pipe.write_value(0, 0, 25)?; // VR0, element 0
//! pipe.write_value(1, 0, 17)?; // VR1, element 0
//! pipe.add(2, 0, 1)?; // VR2 = VR0 + VR1
//! assert_eq!(pipe.read_value(2, 0)?, 42);
//! # Ok(())
//! # }
//! ```

pub mod array;
pub mod dce;
pub mod design;
pub mod logic;
pub mod macros;
pub mod packed;
pub mod pipeline;
pub mod timing;

pub use array::DigitalArray;
pub use dce::DcePipeline;
pub use design::DceDesign;
pub use logic::{BoolOp, LogicFamily};
pub use macros::MacroOp;
pub use packed::{PackedBits, PackedPipeline};
pub use pipeline::{Pipeline, PipelineConfig};
pub use timing::MacroCost;

use std::fmt;

/// Errors produced by the digital PUM simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A vector register index exceeded the pipeline's register file.
    InvalidVectorRegister {
        /// Requested register.
        vr: usize,
        /// Number of architectural vector registers.
        count: usize,
    },
    /// An element index exceeded the pipeline's row count.
    InvalidElement {
        /// Requested element.
        element: usize,
        /// Elements per vector register.
        count: usize,
    },
    /// Pipeline configuration is invalid (zero depth, no scratch, …).
    InvalidConfig(&'static str),
    /// A value does not fit in the pipeline's bit width.
    ValueTooWide {
        /// The value that did not fit.
        value: u64,
        /// Pipeline depth in bits.
        depth: usize,
    },
    /// A shift amount exceeded the pipeline depth.
    ShiftTooFar {
        /// Requested shift amount.
        amount: usize,
        /// Pipeline depth in bits.
        depth: usize,
    },
    /// The macro executor ran out of scratch columns.
    OutOfScratch,
    /// An element-wise load referenced an address outside the source
    /// pipeline's register file.
    AddressOutOfRange {
        /// The offending address value read from the address register.
        address: u64,
        /// Number of addressable vector registers in the source pipeline.
        count: usize,
    },
    /// Two pipelines involved in a transfer have mismatched geometry.
    GeometryMismatch(&'static str),
    /// An underlying ReRAM substrate error.
    Reram(darth_reram::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidVectorRegister { vr, count } => {
                write!(f, "vector register {vr} out of range (have {count})")
            }
            Error::InvalidElement { element, count } => {
                write!(f, "element {element} out of range (have {count})")
            }
            Error::InvalidConfig(msg) => write!(f, "invalid pipeline configuration: {msg}"),
            Error::ValueTooWide { value, depth } => {
                write!(f, "value {value} does not fit in {depth} bits")
            }
            Error::ShiftTooFar { amount, depth } => {
                write!(f, "shift by {amount} exceeds pipeline depth {depth}")
            }
            Error::OutOfScratch => write!(f, "macro expansion exhausted scratch columns"),
            Error::AddressOutOfRange { address, count } => {
                write!(
                    f,
                    "element-wise address {address} out of range (have {count})"
                )
            }
            Error::GeometryMismatch(msg) => write!(f, "pipeline geometry mismatch: {msg}"),
            Error::Reram(e) => write!(f, "reram substrate: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Reram(e) => Some(e),
            _ => None,
        }
    }
}

impl From<darth_reram::Error> for Error {
    fn from(e: darth_reram::Error) -> Self {
        Error::Reram(e)
    }
}

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, Error>;
