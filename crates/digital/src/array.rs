//! A digital PUM array: column-parallel Boolean execution in SLC ReRAM.
//!
//! Digital primitives operate on *columns* (bitlines): the OSCAR NOR of
//! Figure 4 drives two input bitlines and one output bitline, and every
//! floated wordline (row) computes independently. A [`DigitalArray`]
//! therefore exposes gate execution between columns, applied to all rows in
//! parallel, plus the row-granularity reads/writes the peripheral I/O
//! circuitry performs when data enters or leaves the array.

use crate::logic::{BoolOp, LogicFamily};
use crate::{Error, Result};
use darth_reram::{DeviceParams, ReramArray};
use serde::{Deserialize, Serialize};

/// One array of a RACER pipeline, holding a single bit position of every
/// value striped across the pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DigitalArray {
    cells: ReramArray,
    /// Primitive operations executed so far (for energy accounting).
    primitives_executed: u64,
}

impl DigitalArray {
    /// Creates an erased `rows`×`cols` digital array (SLC devices).
    ///
    /// # Errors
    ///
    /// Propagates dimension validation from the ReRAM substrate.
    pub fn new(rows: usize, cols: usize) -> Result<Self> {
        let cells = ReramArray::new(rows, cols, DeviceParams::slc())?;
        Ok(DigitalArray {
            cells,
            primitives_executed: 0,
        })
    }

    /// Number of rows (vector elements).
    pub fn rows(&self) -> usize {
        self.cells.rows()
    }

    /// Number of columns (vector registers + scratch).
    pub fn cols(&self) -> usize {
        self.cells.cols()
    }

    /// Total primitives executed by this array since creation.
    pub fn primitives_executed(&self) -> u64 {
        self.primitives_executed
    }

    /// Reads one bit.
    pub fn bit(&self, row: usize, col: usize) -> bool {
        self.cells.get_bool(row, col)
    }

    /// Writes one bit (peripheral write, not a Boolean primitive).
    pub fn set_bit(&mut self, row: usize, col: usize, value: bool) {
        self.cells.set_bool(row, col, value);
    }

    /// Reads a whole column (one vector register's bit position).
    ///
    /// # Errors
    ///
    /// Returns an error if `col` is out of range.
    pub fn col(&self, col: usize) -> Result<Vec<bool>> {
        Ok(self.cells.col_bools(col)?)
    }

    /// Overwrites a whole column.
    ///
    /// # Errors
    ///
    /// Returns an error if `col` is out of range or `values` has the wrong
    /// length.
    pub fn set_col(&mut self, col: usize, values: &[bool]) -> Result<()> {
        Ok(self.cells.set_col_bools(col, values)?)
    }

    /// Reads a whole row (used by element-wise load/store and pipeline I/O).
    ///
    /// # Errors
    ///
    /// Returns an error if `row` is out of range.
    pub fn row(&self, row: usize) -> Result<Vec<bool>> {
        Ok(self.cells.row_bools(row)?)
    }

    /// Presets a column to all ones — the first half of an OSCAR primitive.
    fn preset_col(&mut self, col: usize) {
        for row in 0..self.rows() {
            self.cells.set_bool(row, col, true);
        }
    }

    /// Executes a *native* primitive `out := op(a, b)` across all rows.
    ///
    /// For OSCAR this models the preset-then-pulse sequence: the output
    /// column is first set to '1', then each output device conditionally
    /// switches to '0' based on the input cell states and the bitline
    /// voltages (Figure 4). The input states are sensed by the pulse, not
    /// re-read after the preset, so an output column that aliases an input
    /// still computes from the original input values.
    fn exec_native(&mut self, op: BoolOp, a: usize, b: usize, out: usize) {
        let rows = self.rows();
        let va: Vec<bool> = (0..rows).map(|r| self.cells.get_bool(r, a)).collect();
        let vb: Vec<bool> = (0..rows).map(|r| self.cells.get_bool(r, b)).collect();
        self.preset_col(out);
        for row in 0..rows {
            self.cells.set_bool(row, out, op.eval(va[row], vb[row]));
        }
        self.primitives_executed += 1;
    }

    /// Executes `out := op(a, b)` across all rows, decomposing non-native
    /// gates into the family's primitives using `scratch` columns.
    ///
    /// Returns the number of native primitives executed, which the caller
    /// converts to cycles and energy via
    /// [`LogicFamily::cycles_per_primitive`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfScratch`] when the decomposition needs more
    /// scratch columns than provided. The required count is
    /// [`LogicFamily::scratch_for`].
    pub fn exec_gate(
        &mut self,
        family: LogicFamily,
        op: BoolOp,
        a: usize,
        b: usize,
        out: usize,
        scratch: &[usize],
    ) -> Result<u64> {
        if family.is_native(op) {
            self.exec_native(op, a, b, out);
            return Ok(1);
        }
        debug_assert_eq!(family, LogicFamily::Oscar);
        if scratch.len() < family.scratch_for(op) {
            return Err(Error::OutOfScratch);
        }
        match op {
            BoolOp::And => {
                // AND(a,b) = NOR(!a, !b)
                let (s0, s1) = (scratch[0], scratch[1]);
                self.exec_native(BoolOp::Nor, a, a, s0); // !a
                self.exec_native(BoolOp::Nor, b, b, s1); // !b
                self.exec_native(BoolOp::Nor, s0, s1, out);
                Ok(3)
            }
            BoolOp::Nand => {
                // NAND(a,b) = OR(!a, !b)
                let (s0, s1) = (scratch[0], scratch[1]);
                self.exec_native(BoolOp::Nor, a, a, s0);
                self.exec_native(BoolOp::Nor, b, b, s1);
                self.exec_native(BoolOp::Or, s0, s1, out);
                Ok(3)
            }
            BoolOp::Xor => {
                // XOR(a,b) = NOR(NOR(a,b), AND(a,b))
                let (s0, s1, s2) = (scratch[0], scratch[1], scratch[2]);
                self.exec_native(BoolOp::Nor, a, b, s0); // !(a|b)
                self.exec_native(BoolOp::Nor, a, a, s1); // !a
                self.exec_native(BoolOp::Nor, b, b, s2); // !b
                self.exec_native(BoolOp::Nor, s1, s2, s1); // a&b
                self.exec_native(BoolOp::Nor, s0, s1, out);
                Ok(5)
            }
            BoolOp::Xnor => {
                // XNOR(a,b) = OR(NOR(a,b), AND(a,b))
                let (s0, s1, s2) = (scratch[0], scratch[1], scratch[2]);
                self.exec_native(BoolOp::Nor, a, b, s0);
                self.exec_native(BoolOp::Nor, a, a, s1);
                self.exec_native(BoolOp::Nor, b, b, s2);
                self.exec_native(BoolOp::Nor, s1, s2, s1);
                self.exec_native(BoolOp::Or, s0, s1, out);
                Ok(5)
            }
            BoolOp::Nor | BoolOp::Or => unreachable!("native ops handled above"),
        }
    }

    /// Copies column `from` into column `to` via a Boolean identity
    /// (`OR(from, from)` for OSCAR, one primitive either way).
    pub fn copy_col(&mut self, from: usize, to: usize) -> u64 {
        self.exec_native(BoolOp::Or, from, from, to);
        1
    }

    /// Clears a column to zero. The peripheral drivers can reset a bitline
    /// directly; modelled as one primitive-equivalent event.
    pub fn clear_col(&mut self, col: usize) -> u64 {
        for row in 0..self.rows() {
            self.cells.set_bool(row, col, false);
        }
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> DigitalArray {
        DigitalArray::new(4, 8).expect("valid dims")
    }

    fn set_inputs(a: &mut DigitalArray, col_a: usize, col_b: usize) {
        // rows encode the four input combinations (00, 01, 10, 11)
        let avals = [false, false, true, true];
        let bvals = [false, true, false, true];
        a.set_col(col_a, &avals).expect("fits");
        a.set_col(col_b, &bvals).expect("fits");
    }

    #[test]
    fn native_nor_truth_table() {
        let mut arr = array();
        set_inputs(&mut arr, 0, 1);
        arr.exec_gate(LogicFamily::Oscar, BoolOp::Nor, 0, 1, 2, &[])
            .expect("native");
        assert_eq!(
            arr.col(2).expect("in range"),
            vec![true, false, false, false]
        );
    }

    #[test]
    fn all_gates_all_families_match_truth_tables() {
        for family in [LogicFamily::Oscar, LogicFamily::Ideal] {
            for op in BoolOp::ALL {
                let mut arr = array();
                set_inputs(&mut arr, 0, 1);
                let scratch = [4, 5, 6];
                let prims = arr
                    .exec_gate(family, op, 0, 1, 2, &scratch)
                    .expect("executes");
                assert_eq!(prims, family.primitives_for(op), "{family} {op}");
                let expected: Vec<bool> =
                    [(false, false), (false, true), (true, false), (true, true)]
                        .iter()
                        .map(|&(a, b)| op.eval(a, b))
                        .collect();
                assert_eq!(arr.col(2).expect("in range"), expected, "{family} {op}");
            }
        }
    }

    #[test]
    fn xor_does_not_clobber_inputs() {
        let mut arr = array();
        set_inputs(&mut arr, 0, 1);
        arr.exec_gate(LogicFamily::Oscar, BoolOp::Xor, 0, 1, 2, &[4, 5, 6])
            .expect("executes");
        assert_eq!(
            arr.col(0).expect("in range"),
            vec![false, false, true, true]
        );
        assert_eq!(
            arr.col(1).expect("in range"),
            vec![false, true, false, true]
        );
    }

    #[test]
    fn out_of_scratch_is_an_error() {
        let mut arr = array();
        set_inputs(&mut arr, 0, 1);
        let err = arr
            .exec_gate(LogicFamily::Oscar, BoolOp::Xor, 0, 1, 2, &[4])
            .unwrap_err();
        assert_eq!(err, Error::OutOfScratch);
    }

    #[test]
    fn primitive_counter_accumulates() {
        let mut arr = array();
        set_inputs(&mut arr, 0, 1);
        arr.exec_gate(LogicFamily::Oscar, BoolOp::Nor, 0, 1, 2, &[])
            .expect("executes");
        arr.exec_gate(LogicFamily::Oscar, BoolOp::Xor, 0, 1, 3, &[4, 5, 6])
            .expect("executes");
        assert_eq!(arr.primitives_executed(), 6); // 1 + 5
    }

    #[test]
    fn copy_col_duplicates() {
        let mut arr = array();
        arr.set_col(0, &[true, false, true, false]).expect("fits");
        arr.copy_col(0, 3);
        assert_eq!(arr.col(3).expect("in range"), arr.col(0).expect("in range"));
    }

    #[test]
    fn clear_col_zeroes() {
        let mut arr = array();
        arr.set_col(2, &[true, true, true, true]).expect("fits");
        arr.clear_col(2);
        assert_eq!(
            arr.col(2).expect("in range"),
            vec![false, false, false, false]
        );
    }

    #[test]
    fn in_place_output_aliasing_input_is_defined() {
        // The pulse senses input device states before the output switches,
        // so `NOR(a, b) -> a` computes from the original `a` values.
        let mut arr = array();
        set_inputs(&mut arr, 0, 1);
        arr.exec_gate(LogicFamily::Oscar, BoolOp::Nor, 0, 1, 0, &[])
            .expect("executes");
        assert_eq!(
            arr.col(0).expect("in range"),
            vec![true, false, false, false]
        );
    }

    #[test]
    fn row_reads_cross_columns() {
        let mut arr = array();
        arr.set_bit(1, 0, true);
        arr.set_bit(1, 3, true);
        let row = arr.row(1).expect("in range");
        assert_eq!(
            row,
            vec![true, false, false, true, false, false, false, false]
        );
    }
}
