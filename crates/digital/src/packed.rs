//! Packed bit-plane storage: 64 pipeline elements per `u64` word.
//!
//! The cell-accurate [`Pipeline`](crate::pipeline::Pipeline) stores every
//! bit in its own simulated ReRAM device and replays each OSCAR
//! decomposition pulse by pulse — ideal for validating the architecture,
//! hopeless for running thousands of AES blocks. This module is the fast
//! path: a [`PackedPipeline`] keeps each bit-plane *column* (one bit
//! position of one vector register, across all elements) as a
//! [`PackedBits`] row of `u64` words, so a Boolean macro evaluates 64
//! cells per host bitwise instruction instead of one.
//!
//! The fast path is only trustworthy because it is *observationally
//! identical* to the reference: every method mirrors the reference
//! pipeline's argument checks (same error variants, same check order),
//! charges the same [`MacroOp`] cost into the same [`PipelineTimer`], and
//! books the same number of native primitives (so energy reports match to
//! the picojoule). Scratch columns are not modelled — they are
//! unobservable through the pipeline API — but the primitives their gate
//! decompositions would execute are still counted. The differential suite
//! in `darth_sim` (`fast_vs_reference`) and the property tests in
//! `crates/digital/tests/packed_property.rs` pin this equivalence.

use crate::dce::DcePipeline;
use crate::logic::BoolOp;
use crate::macros::MacroOp;
use crate::pipeline::PipelineConfig;
use crate::timing::{MacroCost, PipelineTimer};
use crate::{Error, Result};
use darth_reram::{Cycles, PicoJoules};
use serde::{Deserialize, Serialize};

/// A row of bits packed 64-per-`u64`, with unused tail bits held at zero.
///
/// The tail-mask invariant (bits at index `>= len` are zero in the last
/// word) lets whole-word Boolean operations stand in for per-bit ones:
/// complementing ops re-apply the mask so garbage never leaks into the
/// tail and later whole-word comparisons/popcounts stay exact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedBits {
    len: usize,
    words: Vec<u64>,
}

impl PackedBits {
    /// An all-zero row of `len` bits.
    pub fn new(len: usize) -> Self {
        PackedBits {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Packs a bool slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut row = PackedBits::new(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                row.words[i / 64] |= 1u64 << (i % 64);
            }
        }
        row
    }

    /// Unpacks into a bool vector.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Number of bits in the row.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the row holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words (tail bits beyond `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mask valid in the final word; `u64::MAX` when `len` is a multiple
    /// of 64.
    fn tail_mask(&self) -> u64 {
        match self.len % 64 {
            0 => u64::MAX,
            r => (1u64 << r) - 1,
        }
    }

    /// Re-establishes the tail-mask invariant after a complementing op.
    fn mask_tail(&mut self) {
        let mask = self.tail_mask();
        if let Some(last) = self.words.last_mut() {
            *last &= mask;
        }
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        let (w, b) = (i / 64, i % 64);
        if value {
            self.words[w] |= 1u64 << b;
        } else {
            self.words[w] &= !(1u64 << b);
        }
    }

    /// Sets every bit to `value`.
    pub fn fill(&mut self, value: bool) {
        let word = if value { u64::MAX } else { 0 };
        self.words.fill(word);
        self.mask_tail();
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Whether any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// `self & other`, word-wise.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch (callers operate on same-geometry rows).
    pub fn and(&self, other: &PackedBits) -> PackedBits {
        self.zip_words(other, |a, b| a & b, false)
    }

    /// `self | other`, word-wise.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn or(&self, other: &PackedBits) -> PackedBits {
        self.zip_words(other, |a, b| a | b, false)
    }

    /// `self ^ other`, word-wise.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn xor(&self, other: &PackedBits) -> PackedBits {
        self.zip_words(other, |a, b| a ^ b, false)
    }

    /// `!(self | other)`, word-wise with the tail re-masked.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn nor(&self, other: &PackedBits) -> PackedBits {
        self.zip_words(other, |a, b| !(a | b), true)
    }

    /// `!(self & other)`, word-wise with the tail re-masked.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn nand(&self, other: &PackedBits) -> PackedBits {
        self.zip_words(other, |a, b| !(a & b), true)
    }

    /// `!(self ^ other)`, word-wise with the tail re-masked.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn xnor(&self, other: &PackedBits) -> PackedBits {
        self.zip_words(other, |a, b| !(a ^ b), true)
    }

    /// `!self`, word-wise with the tail re-masked.
    pub fn not(&self) -> PackedBits {
        let mut out = PackedBits {
            len: self.len,
            words: self.words.iter().map(|&w| !w).collect(),
        };
        out.mask_tail();
        out
    }

    /// Evaluates `op` over two rows.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn bool_op(&self, op: BoolOp, other: &PackedBits) -> PackedBits {
        match op {
            BoolOp::Nor => self.nor(other),
            BoolOp::Or => self.or(other),
            BoolOp::And => self.and(other),
            BoolOp::Nand => self.nand(other),
            BoolOp::Xor => self.xor(other),
            BoolOp::Xnor => self.xnor(other),
        }
    }

    /// The row shifted `k` positions toward higher indices (bit `i` moves
    /// to `i + k`; vacated low bits are zero, bits pushed past `len` drop).
    pub fn shl(&self, k: usize) -> PackedBits {
        let mut out = PackedBits::new(self.len);
        if k >= self.len {
            return out;
        }
        let (word_shift, bit_shift) = (k / 64, k % 64);
        for i in (0..out.words.len()).rev() {
            let mut w = if i >= word_shift {
                self.words[i - word_shift] << bit_shift
            } else {
                0
            };
            if bit_shift != 0 && i > word_shift {
                w |= self.words[i - word_shift - 1] >> (64 - bit_shift);
            }
            out.words[i] = w;
        }
        out.mask_tail();
        out
    }

    /// The row shifted `k` positions toward lower indices (bit `i` moves
    /// to `i - k`; vacated high bits are zero).
    pub fn shr(&self, k: usize) -> PackedBits {
        let mut out = PackedBits::new(self.len);
        if k >= self.len {
            return out;
        }
        let (word_shift, bit_shift) = (k / 64, k % 64);
        let n = self.words.len();
        for i in 0..n {
            let mut w = if i + word_shift < n {
                self.words[i + word_shift] >> bit_shift
            } else {
                0
            };
            if bit_shift != 0 && i + word_shift + 1 < n {
                w |= self.words[i + word_shift + 1] << (64 - bit_shift);
            }
            out.words[i] = w;
        }
        out
    }

    /// Evaluates `op` on one pair of packed words. The caller re-masks the
    /// tail (via [`PackedBits::set_word`]) for the complementing ops.
    fn word_op(op: BoolOp, a: u64, b: u64) -> u64 {
        match op {
            BoolOp::Nor => !(a | b),
            BoolOp::Or => a | b,
            BoolOp::And => a & b,
            BoolOp::Nand => !(a & b),
            BoolOp::Xor => a ^ b,
            BoolOp::Xnor => !(a ^ b),
        }
    }

    fn zip_words(
        &self,
        other: &PackedBits,
        f: impl Fn(u64, u64) -> u64,
        remask: bool,
    ) -> PackedBits {
        assert_eq!(
            self.len, other.len,
            "packed row length mismatch ({} vs {})",
            self.len, other.len
        );
        let mut out = PackedBits {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        };
        if remask {
            out.mask_tail();
        }
        out
    }
}

// Scratch-free fast path: the reference pipeline's scratch columns are
// unobservable through the API, so the packed model books their primitive
// counts without materialising them.

/// A bit-pipeline functionally identical to the reference
/// [`Pipeline`](crate::pipeline::Pipeline), with each bit-plane column
/// packed into `u64` words.
///
/// Bit planes live in one flat `u64` buffer, vr-major: the row for bit
/// position `plane` of vector register `vr` (its `elements` bits, 64 per
/// word) starts at `(vr * depth + plane) * nw`. One contiguous
/// allocation makes construction and cloning a single memcpy — the batch
/// executor stamps out thousands of per-job machines — and keeps a
/// register's planes adjacent for the word-sweep macros. Macro
/// semantics, argument validation, timing charges and primitive
/// accounting all mirror the reference implementation exactly; see the
/// module docs for the equivalence contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackedPipeline {
    config: PipelineConfig,
    /// Words per packed row: `elements.div_ceil(64)`.
    nw: usize,
    words: Vec<u64>,
    primitives: u64,
    timer: PipelineTimer,
}

impl PackedPipeline {
    /// Creates an erased packed pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for unusable geometry.
    pub fn new(config: PipelineConfig) -> Result<Self> {
        config.validate()?;
        let nw = config.elements.div_ceil(64);
        Ok(PackedPipeline {
            config,
            nw,
            words: vec![0; config.vr_count * config.depth * nw],
            primitives: 0,
            timer: PipelineTimer::new(config.depth as u64),
        })
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    fn check_vr(&self, vr: usize) -> Result<()> {
        if vr >= self.config.vr_count {
            return Err(Error::InvalidVectorRegister {
                vr,
                count: self.config.vr_count,
            });
        }
        Ok(())
    }

    fn check_elem(&self, element: usize) -> Result<()> {
        if element >= self.config.elements {
            return Err(Error::InvalidElement {
                element,
                count: self.config.elements,
            });
        }
        Ok(())
    }

    fn charge(&mut self, op: MacroOp) {
        let cost = op.cost(
            self.config.family,
            self.config.depth as u64,
            self.config.elements as u64,
        );
        self.timer.issue(cost);
    }

    /// Books the primitives a macro's gate decomposition executes on the
    /// reference pipeline (scratch sub-operations included).
    fn book(&mut self, primitives: u64) {
        self.primitives += primitives;
    }

    fn value_mask(&self) -> u64 {
        if self.config.depth == 64 {
            u64::MAX
        } else {
            (1u64 << self.config.depth) - 1
        }
    }

    /// Start of the flat row holding bit `plane` of register `vr`.
    #[inline]
    fn row(&self, vr: usize, plane: usize) -> usize {
        (vr * self.config.depth + plane) * self.nw
    }

    /// Mask valid in word `wi` of a row (`u64::MAX` except a short tail).
    #[inline]
    fn wmask(&self, wi: usize) -> u64 {
        if wi + 1 == self.nw {
            match self.config.elements % 64 {
                0 => u64::MAX,
                r => (1u64 << r) - 1,
            }
        } else {
            u64::MAX
        }
    }

    /// Zeroes the row holding bit `plane` of register `vr`.
    fn clear_row(&mut self, vr: usize, plane: usize) {
        let r = self.row(vr, plane);
        self.words[r..r + self.nw].fill(0);
    }

    /// Reads element `e` of `vr` by gathering one bit per plane.
    fn gather(&self, vr: usize, element: usize) -> u64 {
        let (w, b) = (element / 64, element % 64);
        let base = self.row(vr, 0) + w;
        let mut value = 0u64;
        for i in 0..self.config.depth {
            value |= (self.words[base + i * self.nw] >> b & 1) << i;
        }
        value
    }

    /// Scatters `value` into element `e` of `vr`, one bit per plane.
    /// `element` is in range, so the tail invariant holds by itself.
    fn scatter(&mut self, vr: usize, element: usize, value: u64) {
        let (w, b) = (element / 64, element % 64);
        let bit = 1u64 << b;
        let base = self.row(vr, 0) + w;
        for i in 0..self.config.depth {
            let slot = &mut self.words[base + i * self.nw];
            if value >> i & 1 == 1 {
                *slot |= bit;
            } else {
                *slot &= !bit;
            }
        }
    }

    /// The full-adder wave shared by `add` and `sub`, over packed planes.
    /// Runs word-by-word in place (no per-plane allocations); `dst` may
    /// alias either input because a plane's operand words are read before
    /// its sum word is written, matching the reference where input devices
    /// are sensed before the output switches. `invert_b` complements the
    /// addend on the fly (the `sub` path's NOT wave). Books the same
    /// 17 (OSCAR) / 5 (ideal) primitives per plane as the reference gate
    /// decomposition.
    fn ripple_add(&mut self, dst: usize, a: usize, b: usize, invert_b: bool, carry_in: bool) {
        let per_plane = MacroOp::Add.primitives_per_stage(self.config.family);
        let nw = self.nw;
        let mut carry = vec![0u64; nw];
        if carry_in {
            // Seed every element's carry bit, tail kept zero.
            for (wi, c) in carry.iter_mut().enumerate() {
                *c = self.wmask(wi);
            }
        }
        let (ra, rb, rd) = (self.row(a, 0), self.row(b, 0), self.row(dst, 0));
        for p in 0..self.config.depth {
            let off = p * nw;
            for (wi, c) in carry.iter_mut().enumerate() {
                let wa = self.words[ra + off + wi];
                let wb0 = self.words[rb + off + wi];
                // An inverted tail leaks 1s past the element count; every
                // product below is re-masked by a zero-tail operand or by
                // the explicit sum mask.
                let wb = if invert_b { !wb0 } else { wb0 };
                let x1 = wa ^ wb;
                let sum = x1 ^ *c;
                *c = (wa & wb) | (x1 & *c);
                self.words[rd + off + wi] = sum & self.wmask(wi);
            }
            self.primitives += per_plane;
        }
    }
}

impl DcePipeline for PackedPipeline {
    fn new(config: PipelineConfig) -> Result<Self> {
        PackedPipeline::new(config)
    }

    fn config(&self) -> &PipelineConfig {
        &self.config
    }

    fn write_value(&mut self, vr: usize, element: usize, value: u64) -> Result<()> {
        self.check_vr(vr)?;
        self.check_elem(element)?;
        if value & !self.value_mask() != 0 {
            return Err(Error::ValueTooWide {
                value,
                depth: self.config.depth,
            });
        }
        self.scatter(vr, element, value);
        self.charge(MacroOp::WriteElement);
        Ok(())
    }

    fn read_value(&mut self, vr: usize, element: usize) -> Result<u64> {
        self.check_vr(vr)?;
        self.check_elem(element)?;
        let value = self.gather(vr, element);
        self.charge(MacroOp::ReadElement);
        Ok(value)
    }

    fn write_vector(&mut self, vr: usize, values: &[u64]) -> Result<()> {
        if values.len() > self.config.elements {
            return Err(Error::InvalidElement {
                element: values.len(),
                count: self.config.elements,
            });
        }
        if values.is_empty() {
            return Ok(());
        }
        self.check_vr(vr)?;
        let mask = self.value_mask();
        if values.iter().any(|&v| v & !mask != 0) {
            // Rare: replay the scalar loop so the partial writes (and the
            // charges) before the offending value match the default.
            for (e, &v) in values.iter().enumerate() {
                self.write_value(vr, e, v)?;
            }
            return Ok(());
        }
        // Transpose values into plane words, sparse over set bits, then
        // merge (elements past `values.len()` keep their old bits).
        let nw = self.nw;
        let depth = self.config.depth;
        let mut buf = vec![0u64; depth * nw];
        for (e, &v) in values.iter().enumerate() {
            let (wi, bi) = (e / 64, e % 64);
            let mut rem = v;
            while rem != 0 {
                buf[rem.trailing_zeros() as usize * nw + wi] |= 1u64 << bi;
                rem &= rem - 1;
            }
        }
        let r0 = self.row(vr, 0);
        for i in 0..depth {
            for wi in 0..nw {
                let lo = wi * 64;
                let covered = if values.len() >= lo + 64 {
                    u64::MAX
                } else if values.len() > lo {
                    (1u64 << (values.len() - lo)) - 1
                } else {
                    0
                };
                let slot = &mut self.words[r0 + i * nw + wi];
                *slot = (*slot & !covered) | buf[i * nw + wi];
            }
        }
        for _ in 0..values.len() {
            self.charge(MacroOp::WriteElement);
        }
        Ok(())
    }

    fn read_vector(&mut self, vr: usize) -> Result<Vec<u64>> {
        self.check_vr(vr)?;
        let mut out = vec![0u64; self.config.elements];
        let r0 = self.row(vr, 0);
        for i in 0..self.config.depth {
            for wi in 0..self.nw {
                let mut w = self.words[r0 + i * self.nw + wi];
                while w != 0 {
                    out[wi * 64 + w.trailing_zeros() as usize] |= 1u64 << i;
                    w &= w - 1;
                }
            }
        }
        for _ in 0..self.config.elements {
            self.charge(MacroOp::ReadElement);
        }
        Ok(out)
    }

    fn read_signed_prefix(&mut self, vr: usize, count: usize) -> Result<Vec<i64>> {
        if count == 0 {
            return Ok(Vec::new());
        }
        if count > self.config.elements {
            // Rare: the scalar loop reproduces the per-element error (and
            // the charges issued before it) exactly.
            return (0..count).map(|e| self.read_value_signed(vr, e)).collect();
        }
        self.check_vr(vr)?;
        let depth = self.config.depth;
        let mut out = vec![0u64; count];
        let r0 = self.row(vr, 0);
        for i in 0..depth {
            for wi in 0..self.nw {
                let mut w = self.words[r0 + i * self.nw + wi];
                while w != 0 {
                    let e = wi * 64 + w.trailing_zeros() as usize;
                    if e < count {
                        out[e] |= 1u64 << i;
                    }
                    w &= w - 1;
                }
            }
        }
        let signed = out
            .into_iter()
            .map(|raw| {
                if depth < 64 && raw & (1u64 << (depth - 1)) != 0 {
                    (raw as i64) - (1i64 << depth)
                } else {
                    raw as i64
                }
            })
            .collect();
        for _ in 0..count {
            self.charge(MacroOp::ReadElement);
        }
        Ok(signed)
    }

    fn peek_value(&self, vr: usize, element: usize) -> u64 {
        self.gather(vr, element)
    }

    fn bool_op(&mut self, op: BoolOp, dst: usize, a: usize, b: usize) -> Result<()> {
        self.check_vr(dst)?;
        self.check_vr(a)?;
        self.check_vr(b)?;
        let per_plane = self.config.family.primitives_for(op);
        let nw = self.nw;
        let (ra, rb, rd) = (self.row(a, 0), self.row(b, 0), self.row(dst, 0));
        for p in 0..self.config.depth {
            let off = p * nw;
            for wi in 0..nw {
                let w =
                    PackedBits::word_op(op, self.words[ra + off + wi], self.words[rb + off + wi]);
                // Complementing ops set tail 1s; the mask restores the
                // zero-tail invariant.
                self.words[rd + off + wi] = w & self.wmask(wi);
            }
        }
        self.book(per_plane * self.config.depth as u64);
        self.charge(MacroOp::Bool(op));
        Ok(())
    }

    fn not(&mut self, dst: usize, a: usize) -> Result<()> {
        self.check_vr(dst)?;
        self.check_vr(a)?;
        let nw = self.nw;
        let (ra, rd) = (self.row(a, 0), self.row(dst, 0));
        for p in 0..self.config.depth {
            let off = p * nw;
            for wi in 0..nw {
                self.words[rd + off + wi] = !self.words[ra + off + wi] & self.wmask(wi);
            }
        }
        self.book(self.config.depth as u64);
        self.charge(MacroOp::Not);
        Ok(())
    }

    fn add(&mut self, dst: usize, a: usize, b: usize) -> Result<()> {
        self.check_vr(dst)?;
        self.check_vr(a)?;
        self.check_vr(b)?;
        self.ripple_add(dst, a, b, false, false);
        self.charge(MacroOp::Add);
        Ok(())
    }

    fn sub(&mut self, dst: usize, a: usize, b: usize) -> Result<()> {
        self.check_vr(dst)?;
        self.check_vr(a)?;
        self.check_vr(b)?;
        // NOT b (one primitive per plane on the reference), folded into
        // the adder wave, then add with carry-in 1.
        self.book(self.config.depth as u64);
        self.ripple_add(dst, a, b, true, true);
        self.charge(MacroOp::Sub);
        Ok(())
    }

    fn cmp_lt(&mut self, dst: usize, a: usize, b: usize) -> Result<()> {
        self.check_vr(dst)?;
        self.check_vr(a)?;
        self.check_vr(b)?;
        // Unsigned compare as a packed borrow sweep, LSB to MSB:
        // lt = (!a & b) | (!(a ^ b) & lt). Both products are masked by a
        // zero-tail operand, so `lt` keeps the invariant without remasking.
        let nw = self.nw;
        let mut lt = vec![0u64; nw];
        let (ra, rb) = (self.row(a, 0), self.row(b, 0));
        for p in 0..self.config.depth {
            let off = p * nw;
            for (wi, l) in lt.iter_mut().enumerate() {
                let wa = self.words[ra + off + wi];
                let wb = self.words[rb + off + wi];
                *l = (!wa & wb) | (!(wa ^ wb) & *l);
            }
        }
        // The reference writes the mask value into every plane of dst.
        let rd = self.row(dst, 0);
        for p in 0..self.config.depth {
            let off = p * nw;
            for (wi, &l) in lt.iter().enumerate() {
                self.words[rd + off + wi] = l;
            }
        }
        self.charge(MacroOp::CmpLt);
        Ok(())
    }

    fn select(&mut self, dst: usize, cond: usize, a: usize, b: usize) -> Result<()> {
        self.check_vr(dst)?;
        self.check_vr(cond)?;
        self.check_vr(a)?;
        self.check_vr(b)?;
        // Per plane on the reference: AND + NOT + AND + OR. The inverted
        // condition's tail 1s are masked away by the zero-tail operands.
        let family = self.config.family;
        let per_plane = family.primitives_for(BoolOp::And) * 2
            + family.primitives_for(BoolOp::Nor)
            + family.primitives_for(BoolOp::Or);
        let nw = self.nw;
        let (rc, ra, rb, rd) = (
            self.row(cond, 0),
            self.row(a, 0),
            self.row(b, 0),
            self.row(dst, 0),
        );
        for p in 0..self.config.depth {
            let off = p * nw;
            for wi in 0..nw {
                let c = self.words[rc + off + wi];
                let w = (c & self.words[ra + off + wi]) | (!c & self.words[rb + off + wi]);
                self.words[rd + off + wi] = w;
            }
        }
        self.book(per_plane * self.config.depth as u64);
        self.charge(MacroOp::Select);
        Ok(())
    }

    fn relu(&mut self, dst: usize, a: usize) -> Result<()> {
        self.check_vr(dst)?;
        self.check_vr(a)?;
        // mask = NOT sign, computed once in the top plane (1 primitive),
        // then broadcast + AND in every plane. Planes run bottom-up, so
        // the sign plane is read before the final iteration can overwrite
        // it when `dst` aliases `a`.
        let per_plane = self.config.family.primitives_for(BoolOp::And);
        let nw = self.nw;
        let (ra, rd) = (self.row(a, 0), self.row(dst, 0));
        let sign_off = (self.config.depth - 1) * nw;
        for p in 0..self.config.depth {
            let off = p * nw;
            for wi in 0..nw {
                let s = self.words[ra + sign_off + wi];
                let w = !s & self.words[ra + off + wi];
                self.words[rd + off + wi] = w;
            }
        }
        self.book(1 + per_plane * self.config.depth as u64);
        self.charge(MacroOp::Relu);
        Ok(())
    }

    fn mul(&mut self, dst: usize, a: usize, b: usize, width: u8) -> Result<()> {
        self.check_vr(dst)?;
        self.check_vr(a)?;
        self.check_vr(b)?;
        // Value-level on the reference too; no primitives booked.
        let mask = self.value_mask();
        for e in 0..self.config.elements {
            let product = self.gather(a, e).wrapping_mul(self.gather(b, e)) & mask;
            self.scatter(dst, e, product);
        }
        self.charge(MacroOp::Mul(width));
        Ok(())
    }

    fn copy_vr(&mut self, dst: usize, src: usize) -> Result<()> {
        self.check_vr(dst)?;
        self.check_vr(src)?;
        let n = self.config.depth * self.nw;
        let (rs, rd) = (self.row(src, 0), self.row(dst, 0));
        self.words.copy_within(rs..rs + n, rd);
        // Boolean identity (OR(a,a)): one primitive per plane.
        self.book(self.config.depth as u64);
        self.charge(MacroOp::CopyVr);
        Ok(())
    }

    fn copy_from(&mut self, other: &Self, src_vr: usize, dst_vr: usize) -> Result<()> {
        if other.config.depth != self.config.depth || other.config.elements != self.config.elements
        {
            return Err(Error::GeometryMismatch(
                "inter-pipeline copy requires identical depth and elements",
            ));
        }
        other.check_vr(src_vr)?;
        self.check_vr(dst_vr)?;
        // Same depth and elements, so both sides share `nw` and one
        // register is one contiguous block on each side.
        let n = self.config.depth * self.nw;
        let rs = other.row(src_vr, 0);
        let rd = self.row(dst_vr, 0);
        self.words[rd..rd + n].copy_from_slice(&other.words[rs..rs + n]);
        self.charge(MacroOp::CopyAcross);
        Ok(())
    }

    fn shl(&mut self, dst: usize, src: usize, k: usize) -> Result<()> {
        self.check_vr(dst)?;
        self.check_vr(src)?;
        if k > self.config.depth {
            return Err(Error::ShiftTooFar {
                amount: k,
                depth: self.config.depth,
            });
        }
        // Plane block i..depth of dst receives block 0..depth-k of src;
        // `copy_within` is a memmove, so a `dst == src` overlap behaves
        // as if staged through a temporary — the same result the
        // reference's descending plane loop produces.
        let nw = self.nw;
        let depth = self.config.depth;
        let (rs, rd) = (self.row(src, 0), self.row(dst, 0));
        if k < depth {
            let n = (depth - k) * nw;
            self.words.copy_within(rs..rs + n, rd + k * nw);
        }
        for i in 0..k.min(depth) {
            self.clear_row(dst, i);
        }
        self.charge(MacroOp::ShiftBits(k as u8));
        Ok(())
    }

    fn shr(&mut self, dst: usize, src: usize, k: usize) -> Result<()> {
        self.check_vr(dst)?;
        self.check_vr(src)?;
        if k > self.config.depth {
            return Err(Error::ShiftTooFar {
                amount: k,
                depth: self.config.depth,
            });
        }
        let nw = self.nw;
        let depth = self.config.depth;
        let (rs, rd) = (self.row(src, 0), self.row(dst, 0));
        if k < depth {
            let n = (depth - k) * nw;
            self.words.copy_within(rs + k * nw..rs + k * nw + n, rd);
        }
        for i in depth.saturating_sub(k)..depth {
            self.clear_row(dst, i);
        }
        self.charge(MacroOp::ShiftBits(k as u8));
        Ok(())
    }

    fn rotate_left(
        &mut self,
        dst: usize,
        src: usize,
        tmp: usize,
        k: usize,
        width: usize,
    ) -> Result<()> {
        if width > self.config.depth || width == 0 {
            return Err(Error::ShiftTooFar {
                amount: width,
                depth: self.config.depth,
            });
        }
        if k >= width {
            return Err(Error::ShiftTooFar {
                amount: k,
                depth: width,
            });
        }
        if k == 0 {
            return self.copy_vr(dst, src);
        }
        self.shl(tmp, src, k)?;
        self.shr(dst, src, width - k)?;
        self.bool_op(BoolOp::Or, dst, dst, tmp)?;
        for i in width..self.config.depth {
            self.clear_row(dst, i);
        }
        Ok(())
    }

    fn reverse(&mut self) {
        // Swap plane p with plane depth-1-p inside every register block.
        let depth = self.config.depth;
        let nw = self.nw;
        for vr in 0..self.config.vr_count {
            for p in 0..depth / 2 {
                let (lo, hi) = (self.row(vr, p), self.row(vr, depth - 1 - p));
                for wi in 0..nw {
                    self.words.swap(lo + wi, hi + wi);
                }
            }
        }
        self.charge(MacroOp::Reverse);
    }

    fn elementwise_load(&mut self, addr_vr: usize, table: &Self, dst_vr: usize) -> Result<()> {
        if table.config.depth != self.config.depth {
            return Err(Error::GeometryMismatch(
                "element-wise load requires identical pipeline depth",
            ));
        }
        self.check_vr(addr_vr)?;
        self.check_vr(dst_vr)?;
        let depth = self.config.depth;
        let nw = self.nw;
        let t_nw = table.nw;
        let t_elems = table.config.elements;
        let capacity = (table.config.vr_count * t_elems) as u64;
        // Transpose the address register once, sparse over its set bits,
        // instead of gathering each element's address bit by bit.
        let mut addrs = vec![0u64; self.config.elements];
        let r_addr = self.row(addr_vr, 0);
        for i in 0..depth {
            for wi in 0..nw {
                let mut w = self.words[r_addr + i * nw + wi];
                while w != 0 {
                    addrs[wi * 64 + w.trailing_zeros() as usize] |= 1u64 << i;
                    w &= w - 1;
                }
            }
        }
        // Validate addresses up front (ascending, like the scalar loop),
        // then gather plane-major: each element's table position becomes
        // a (row-base, bit) pair, so a plane pass is `base + i * t_nw`.
        let bad = addrs
            .iter()
            .enumerate()
            .find(|&(_, &a)| a >= capacity)
            .map(|(e, &a)| (e, a));
        let limit = bad.map_or(self.config.elements, |(e, _)| e);
        let pre: Vec<(usize, u32)> = addrs[..limit]
            .iter()
            .map(|&a| {
                let (tvr, trow) = (a as usize / t_elems, a as usize % t_elems);
                (tvr * depth * t_nw + trow / 64, (trow % 64) as u32)
            })
            .collect();
        let mut out = vec![0u64; depth * nw];
        for i in 0..depth {
            let plane_off = i * t_nw;
            for wi in 0..nw {
                let base = wi * 64;
                if base >= limit {
                    break;
                }
                let mut w = 0u64;
                for (off, &(tbase, tbi)) in pre[base..limit.min(base + 64)].iter().enumerate() {
                    w |= (table.words[tbase + plane_off] >> tbi & 1) << off;
                }
                out[i * nw + wi] = w;
            }
        }
        if let Some((e, address)) = bad {
            // Match the scalar loop's partial-scatter semantics: elements
            // before the offending address have landed.
            for pe in 0..e {
                let mut v = 0u64;
                for i in 0..depth {
                    v |= (out[i * nw + pe / 64] >> (pe % 64) & 1) << i;
                }
                self.scatter(dst_vr, pe, v);
            }
            return Err(Error::AddressOutOfRange {
                address,
                count: table.config.vr_count * t_elems,
            });
        }
        // Every element was loaded, so the destination register block is
        // overwritten wholesale from the staging buffer.
        let rd = self.row(dst_vr, 0);
        self.words[rd..rd + depth * nw].copy_from_slice(&out);
        self.charge(MacroOp::ElementLoad);
        Ok(())
    }

    fn primitives_executed(&self) -> u64 {
        self.primitives
    }

    fn energy(&self) -> PicoJoules {
        PicoJoules::new(self.primitives as f64 * self.config.family.energy_per_primitive_pj())
    }

    fn elapsed(&self) -> Cycles {
        self.timer.elapsed()
    }

    fn reset_timer(&mut self) -> Cycles {
        let old = std::mem::replace(
            &mut self.timer,
            PipelineTimer::new(self.config.depth as u64),
        );
        old.finish()
    }

    fn charge_external(&mut self, cost: MacroCost) {
        self.timer.issue(cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::LogicFamily;
    use crate::pipeline::Pipeline;

    fn config(depth: usize, elements: usize) -> PipelineConfig {
        PipelineConfig {
            depth,
            elements,
            vr_count: 10,
            scratch_cols: 8,
            family: LogicFamily::Oscar,
        }
    }

    #[test]
    fn packed_bits_round_trips_odd_lengths() {
        for len in [1usize, 63, 64, 65, 127, 128, 192] {
            let bits: Vec<bool> = (0..len).map(|i| i % 3 == 0).collect();
            let row = PackedBits::from_bools(&bits);
            assert_eq!(row.to_bools(), bits, "len {len}");
        }
    }

    #[test]
    fn packed_not_keeps_tail_zero() {
        let row = PackedBits::new(70);
        let inverted = row.not();
        assert_eq!(inverted.to_bools(), vec![true; 70]);
        // Tail bits of the final word stay zero.
        assert_eq!(inverted.words()[1] >> 6, 0);
    }

    #[test]
    fn packed_shifts_match_index_semantics() {
        let bits: Vec<bool> = (0..100).map(|i| i % 7 == 0).collect();
        let row = PackedBits::from_bools(&bits);
        for k in [0usize, 1, 63, 64, 65, 99, 100, 150] {
            let shl = row.shl(k);
            let shr = row.shr(k);
            for i in 0..100 {
                let expect_l = i >= k && bits[i - k];
                let expect_r = i + k < 100 && bits[i + k];
                assert_eq!(shl.get(i), expect_l, "shl k={k} i={i}");
                assert_eq!(shr.get(i), expect_r, "shr k={k} i={i}");
            }
        }
    }

    #[test]
    fn packed_pipeline_matches_reference_on_arithmetic() {
        let cfg = config(16, 8);
        let mut fast = PackedPipeline::new(cfg).expect("builds");
        let mut slow = Pipeline::new(cfg).expect("builds");
        let a = [0u64, 1, 255, 1000, 65535, 32768, 42, 9999];
        let b = [0u64, 1, 1, 24, 1, 32768, 58, 1];
        for e in 0..8 {
            DcePipeline::write_value(&mut fast, 0, e, a[e]).expect("writes");
            DcePipeline::write_value(&mut fast, 1, e, b[e]).expect("writes");
            slow.write_value(0, e, a[e]).expect("writes");
            slow.write_value(1, e, b[e]).expect("writes");
        }
        DcePipeline::add(&mut fast, 2, 0, 1).expect("adds");
        slow.add(2, 0, 1).expect("adds");
        DcePipeline::sub(&mut fast, 3, 0, 1).expect("subs");
        slow.sub(3, 0, 1).expect("subs");
        DcePipeline::cmp_lt(&mut fast, 4, 0, 1).expect("compares");
        slow.cmp_lt(4, 0, 1).expect("compares");
        for vr in 2..5 {
            for e in 0..8 {
                assert_eq!(
                    fast.peek_value(vr, e),
                    slow.peek_value(vr, e),
                    "vr {vr} e {e}"
                );
            }
        }
        assert_eq!(
            DcePipeline::primitives_executed(&fast),
            slow.primitives_executed()
        );
        assert_eq!(DcePipeline::elapsed(&fast), slow.elapsed());
    }

    #[test]
    fn aliasing_add_matches_reference() {
        let cfg = config(8, 8);
        let mut fast = PackedPipeline::new(cfg).expect("builds");
        for e in 0..8 {
            DcePipeline::write_value(&mut fast, 0, e, 10).expect("writes");
            DcePipeline::write_value(&mut fast, 1, e, 32).expect("writes");
        }
        DcePipeline::add(&mut fast, 0, 0, 1).expect("adds");
        assert_eq!(fast.peek_value(0, 0), 42);
    }
}
