//! The bit-pipelining cost model.
//!
//! RACER executes one macro operation (say, a 64-bit ADD) as a wave that
//! flows through the pipeline: array 0 performs the per-bit gate program for
//! bit 0, hands the carry to array 1, and so on. The *stage time* is the
//! cycle count of the per-bit gate program; one operation's latency is
//! `stage_cycles × stages`, but a stream of operations (dependent or not —
//! bit-aligned dependencies also pipeline) achieves a throughput of one
//! operation per `stage_cycles` once the pipeline is warm.
//!
//! Operations that move data *across* bit positions (shifts, pipeline
//! reversal) or through the peripheral I/O (element-wise load/store) break
//! the wave and force a drain; [`PipelineTimer`] accounts for those
//! barriers, which is exactly the serialization the paper's Figure 10a
//! suffers from and its shift units (Figure 10b) avoid.

use darth_reram::Cycles;
use serde::{Deserialize, Serialize};

/// Cost descriptor of one macro operation on a bit pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacroCost {
    /// Cycles of work each array performs (the pipeline stage time).
    pub stage_cycles: u64,
    /// Arrays the operation traverses (usually the pipeline depth).
    pub stages: u64,
    /// Total native primitives executed across all stages (drives energy).
    pub primitives: u64,
    /// Whether the operation breaks bit-pipelining (shift/reversal/IO).
    pub barrier: bool,
}

impl MacroCost {
    /// A zero-cost marker (used for free coordination events).
    pub const FREE: MacroCost = MacroCost {
        stage_cycles: 0,
        stages: 0,
        primitives: 0,
        barrier: false,
    };

    /// Latency of this operation executed alone on an idle pipeline.
    pub fn latency(&self) -> Cycles {
        Cycles::new(self.stage_cycles * self.stages)
    }

    /// Total cycles for `n` back-to-back operations of this kind, using the
    /// classic pipeline formula `stage × (stages + n − 1)`.
    pub fn pipelined_batch(&self, n: u64) -> Cycles {
        if n == 0 || self.stages == 0 {
            return Cycles::ZERO;
        }
        Cycles::new(self.stage_cycles * (self.stages + n - 1))
    }
}

/// Accumulates the execution time of a stream of macro operations on one
/// pipeline, modelling overlap and drain.
///
/// # Example
///
/// ```
/// use darth_digital::timing::{MacroCost, PipelineTimer};
///
/// let add = MacroCost { stage_cycles: 34, stages: 64, primitives: 17 * 64, barrier: false };
/// let mut timer = PipelineTimer::new(64);
/// for _ in 0..10 {
///     timer.issue(add);
/// }
/// // 10 pipelined ADDs: 10 stage-slots plus one drain of the wave.
/// assert_eq!(timer.finish().get(), 34 * 10 + 34 * 63);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineTimer {
    depth: u64,
    issue_cycles: u64,
    last_stage_cycles: u64,
    drained_total: u64,
    ops_issued: u64,
    barriers: u64,
}

impl PipelineTimer {
    /// Creates a timer for a pipeline with `depth` arrays.
    pub fn new(depth: u64) -> Self {
        PipelineTimer {
            depth,
            issue_cycles: 0,
            last_stage_cycles: 0,
            drained_total: 0,
            ops_issued: 0,
            barriers: 0,
        }
    }

    /// Issues one macro operation into the stream.
    ///
    /// Barrier operations drain the in-flight wave before executing and
    /// leave the pipeline empty afterwards.
    pub fn issue(&mut self, cost: MacroCost) {
        if cost.barrier {
            self.drain();
            // Barrier ops execute start-to-finish without overlap.
            self.drained_total += cost.stage_cycles * cost.stages.max(1);
            self.barriers += 1;
            self.ops_issued += 1;
            return;
        }
        self.issue_cycles += cost.stage_cycles;
        self.last_stage_cycles = cost.stage_cycles;
        self.ops_issued += 1;
    }

    /// Forces the in-flight wave to exit the pipeline.
    pub fn drain(&mut self) {
        if self.last_stage_cycles > 0 {
            self.drained_total += self.issue_cycles + self.last_stage_cycles * (self.depth - 1);
            self.issue_cycles = 0;
            self.last_stage_cycles = 0;
        } else {
            self.drained_total += self.issue_cycles;
            self.issue_cycles = 0;
        }
    }

    /// Total operations issued so far.
    pub fn ops_issued(&self) -> u64 {
        self.ops_issued
    }

    /// Barrier operations encountered so far.
    pub fn barriers(&self) -> u64 {
        self.barriers
    }

    /// Drains the pipeline and returns the total cycle count.
    pub fn finish(mut self) -> Cycles {
        self.drain();
        Cycles::new(self.drained_total)
    }

    /// Total cycles if the stream ended now (non-destructive).
    pub fn elapsed(&self) -> Cycles {
        let mut copy = self.clone();
        copy.drain();
        Cycles::new(copy.drained_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(stage: u64, barrier: bool) -> MacroCost {
        MacroCost {
            stage_cycles: stage,
            stages: 8,
            primitives: stage * 8,
            barrier,
        }
    }

    #[test]
    fn single_op_latency() {
        let c = op(10, false);
        assert_eq!(c.latency().get(), 80);
        assert_eq!(c.pipelined_batch(1).get(), 80);
    }

    #[test]
    fn batch_throughput_beats_serial() {
        let c = op(10, false);
        let serial = c.latency().get() * 100;
        let piped = c.pipelined_batch(100).get();
        assert!(piped < serial / 5, "piped {piped} vs serial {serial}");
        assert_eq!(piped, 10 * (8 + 99));
    }

    #[test]
    fn zero_batch_is_free() {
        assert_eq!(op(10, false).pipelined_batch(0), Cycles::ZERO);
        assert_eq!(MacroCost::FREE.pipelined_batch(5), Cycles::ZERO);
    }

    #[test]
    fn timer_overlaps_nonbarrier_ops() {
        let mut t = PipelineTimer::new(8);
        for _ in 0..100 {
            t.issue(op(10, false));
        }
        // issue slots + drain of last wave
        assert_eq!(t.finish().get(), 10 * 100 + 10 * 7);
    }

    #[test]
    fn timer_matches_pipelined_batch_formula() {
        let c = op(10, false);
        let mut t = PipelineTimer::new(8);
        for _ in 0..42 {
            t.issue(c);
        }
        assert_eq!(t.finish(), c.pipelined_batch(42));
    }

    #[test]
    fn barrier_forces_serialization() {
        let mut t = PipelineTimer::new(8);
        t.issue(op(10, false)); // wave enters
        t.issue(op(4, true)); // barrier: drain (10 + 10*7) then 4*8
        t.issue(op(10, false));
        let total = t.finish().get();
        assert_eq!(total, (10 + 70) + 32 + (10 + 70));
    }

    #[test]
    fn empty_timer_is_zero() {
        assert_eq!(PipelineTimer::new(64).finish(), Cycles::ZERO);
    }

    #[test]
    fn elapsed_is_nondestructive() {
        let mut t = PipelineTimer::new(8);
        t.issue(op(10, false));
        let before = t.elapsed();
        t.issue(op(10, false));
        let after = t.elapsed();
        assert!(after > before);
        assert_eq!(t.ops_issued(), 2);
    }

    #[test]
    fn counters_track_barriers() {
        let mut t = PipelineTimer::new(8);
        t.issue(op(1, false));
        t.issue(op(1, true));
        t.issue(op(1, true));
        assert_eq!(t.barriers(), 2);
        assert_eq!(t.ops_issued(), 3);
    }
}
