//! The DCE pipeline abstraction shared by the reference and fast paths.
//!
//! [`DcePipeline`] is the surface the chip model programs against: vector
//! register I/O, the Boolean/arithmetic macro library, inter-pipeline
//! transfers and the timing/energy meters. Two implementations exist:
//!
//! * [`Pipeline`] — the cell-accurate
//!   reference, replaying each OSCAR primitive pulse by pulse over
//!   simulated ReRAM devices;
//! * [`PackedPipeline`](crate::packed::PackedPipeline) — the packed fast
//!   path, evaluating 64 cells per `u64` word while booking identical
//!   costs and primitive counts.
//!
//! Making the chip generic over this trait keeps the MVM, timing and
//! energy logic single-copy, so the fast path cannot drift from the
//! reference in any layer above the pipeline.

use crate::logic::{BoolOp, LogicFamily};
use crate::pipeline::{Pipeline, PipelineConfig};
use crate::timing::MacroCost;
use crate::{Error, Result};
use darth_reram::{Cycles, PicoJoules};

/// A RACER bit-pipeline: `depth`-bit values striped across bit planes,
/// `elements`-wide SIMD macros, and the timing/energy accounting the chip
/// model reads back.
///
/// All implementations must be observationally identical for identical
/// call sequences: same results, same errors (variant and check order),
/// same elapsed cycles and same primitive counts. The differential suite
/// in `darth_sim` enforces this end to end.
pub trait DcePipeline: Sized + Clone + std::fmt::Debug + Send {
    /// Creates a pipeline with the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for unusable geometry.
    fn new(config: PipelineConfig) -> Result<Self>;

    /// The pipeline's configuration.
    fn config(&self) -> &PipelineConfig;

    /// Bit width of stored values.
    fn depth(&self) -> usize {
        self.config().depth
    }

    /// SIMD element count.
    fn elements(&self) -> usize {
        self.config().elements
    }

    /// Number of architectural vector registers.
    fn vr_count(&self) -> usize {
        self.config().vr_count
    }

    /// The logic family in use.
    fn family(&self) -> LogicFamily {
        self.config().family
    }

    /// Writes one element of a vector register.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range indices or a value wider than
    /// the pipeline depth.
    fn write_value(&mut self, vr: usize, element: usize, value: u64) -> Result<()>;

    /// Reads one element of a vector register.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range indices.
    fn read_value(&mut self, vr: usize, element: usize) -> Result<u64>;

    /// Reads one element as a signed two's-complement value.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range indices.
    fn read_value_signed(&mut self, vr: usize, element: usize) -> Result<i64> {
        let raw = self.read_value(vr, element)?;
        let depth = self.config().depth;
        if depth == 64 {
            return Ok(raw as i64);
        }
        let sign = 1u64 << (depth - 1);
        if raw & sign != 0 {
            Ok((raw as i64) - (1i64 << depth))
        } else {
            Ok(raw as i64)
        }
    }

    /// Writes a full vector (one element per row).
    ///
    /// # Errors
    ///
    /// Returns an error if `values` exceeds the element count or any
    /// value is too wide.
    fn write_vector(&mut self, vr: usize, values: &[u64]) -> Result<()> {
        if values.len() > self.config().elements {
            return Err(Error::InvalidElement {
                element: values.len(),
                count: self.config().elements,
            });
        }
        for (e, &v) in values.iter().enumerate() {
            self.write_value(vr, e, v)?;
        }
        Ok(())
    }

    /// Reads a full vector.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range register.
    fn read_vector(&mut self, vr: usize) -> Result<Vec<u64>> {
        (0..self.config().elements)
            .map(|e| self.read_value(vr, e))
            .collect()
    }

    /// Reads the first `count` elements as signed two's-complement
    /// values, charging one `ReadElement` per element like the scalar
    /// reads it stands in for.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range indices.
    fn read_signed_prefix(&mut self, vr: usize, count: usize) -> Result<Vec<i64>> {
        (0..count).map(|e| self.read_value_signed(vr, e)).collect()
    }

    /// Reads a value without charging I/O cost.
    fn peek_value(&self, vr: usize, element: usize) -> u64;

    /// `dst := op(a, b)` element-wise across the whole vector register.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range registers.
    fn bool_op(&mut self, op: BoolOp, dst: usize, a: usize, b: usize) -> Result<()>;

    /// `dst := !a`, element-wise.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range registers.
    fn not(&mut self, dst: usize, a: usize) -> Result<()>;

    /// `dst := a + b` (mod `2^depth`), element-wise.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range registers.
    fn add(&mut self, dst: usize, a: usize, b: usize) -> Result<()>;

    /// `dst := a - b` (mod `2^depth`), element-wise.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range registers.
    fn sub(&mut self, dst: usize, a: usize, b: usize) -> Result<()>;

    /// `dst := (a < b) ? all-ones : 0`, element-wise unsigned compare.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range registers.
    fn cmp_lt(&mut self, dst: usize, a: usize, b: usize) -> Result<()>;

    /// `dst := cond ? a : b`, element-wise, with a 0/all-ones mask.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range registers.
    fn select(&mut self, dst: usize, cond: usize, a: usize, b: usize) -> Result<()>;

    /// `dst := max(a, 0)` on two's-complement values.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range registers.
    fn relu(&mut self, dst: usize, a: usize) -> Result<()>;

    /// `dst := a * b` (mod `2^depth`) over `width`-bit operands.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range registers.
    fn mul(&mut self, dst: usize, a: usize, b: usize, width: u8) -> Result<()>;

    /// `dst := src` within this pipeline.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range registers.
    fn copy_vr(&mut self, dst: usize, src: usize) -> Result<()>;

    /// Copies a vector register from another pipeline into this one.
    ///
    /// # Errors
    ///
    /// Returns [`Error::GeometryMismatch`] when the pipelines differ in
    /// depth or element count, or an index error.
    fn copy_from(&mut self, other: &Self, src_vr: usize, dst_vr: usize) -> Result<()>;

    /// `dst := src << k` (element-wise bit shift).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShiftTooFar`] when `k` exceeds the depth.
    fn shl(&mut self, dst: usize, src: usize, k: usize) -> Result<()>;

    /// `dst := src >> k` (logical right shift).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShiftTooFar`] when `k` exceeds the depth.
    fn shr(&mut self, dst: usize, src: usize, k: usize) -> Result<()>;

    /// `dst := rotl(src, k)` within the low `width` bits, via `tmp`.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range registers, a `width` above the
    /// pipeline depth, or `k >= width`.
    fn rotate_left(
        &mut self,
        dst: usize,
        src: usize,
        tmp: usize,
        k: usize,
        width: usize,
    ) -> Result<()>;

    /// Reverses the pipeline's bit order (drains in-flight work first).
    fn reverse(&mut self);

    /// Element-wise indexed load: for each element `e`, reads the address
    /// in `addr_vr[e]`, fetches that value from `table`, stores it into
    /// `dst_vr[e]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] for addresses beyond the
    /// table's register file, or a geometry error when depths differ.
    fn elementwise_load(&mut self, addr_vr: usize, table: &Self, dst_vr: usize) -> Result<()>;

    /// Total native primitives executed.
    fn primitives_executed(&self) -> u64;

    /// Dynamic energy of all executed primitives.
    fn energy(&self) -> PicoJoules;

    /// Elapsed cycles including a drain of in-flight work.
    fn elapsed(&self) -> Cycles;

    /// Replaces the timer, returning the previous elapsed time.
    fn reset_timer(&mut self) -> Cycles;

    /// Issues an externally computed cost into this pipeline's timer.
    fn charge_external(&mut self, cost: MacroCost);
}

impl DcePipeline for Pipeline {
    fn new(config: PipelineConfig) -> Result<Self> {
        Pipeline::new(config)
    }

    fn config(&self) -> &PipelineConfig {
        Pipeline::config(self)
    }

    fn write_value(&mut self, vr: usize, element: usize, value: u64) -> Result<()> {
        Pipeline::write_value(self, vr, element, value)
    }

    fn read_value(&mut self, vr: usize, element: usize) -> Result<u64> {
        Pipeline::read_value(self, vr, element)
    }

    fn read_value_signed(&mut self, vr: usize, element: usize) -> Result<i64> {
        Pipeline::read_value_signed(self, vr, element)
    }

    fn write_vector(&mut self, vr: usize, values: &[u64]) -> Result<()> {
        Pipeline::write_vector(self, vr, values)
    }

    fn read_vector(&mut self, vr: usize) -> Result<Vec<u64>> {
        Pipeline::read_vector(self, vr)
    }

    fn peek_value(&self, vr: usize, element: usize) -> u64 {
        Pipeline::peek_value(self, vr, element)
    }

    fn bool_op(&mut self, op: BoolOp, dst: usize, a: usize, b: usize) -> Result<()> {
        Pipeline::bool_op(self, op, dst, a, b)
    }

    fn not(&mut self, dst: usize, a: usize) -> Result<()> {
        Pipeline::not(self, dst, a)
    }

    fn add(&mut self, dst: usize, a: usize, b: usize) -> Result<()> {
        Pipeline::add(self, dst, a, b)
    }

    fn sub(&mut self, dst: usize, a: usize, b: usize) -> Result<()> {
        Pipeline::sub(self, dst, a, b)
    }

    fn cmp_lt(&mut self, dst: usize, a: usize, b: usize) -> Result<()> {
        Pipeline::cmp_lt(self, dst, a, b)
    }

    fn select(&mut self, dst: usize, cond: usize, a: usize, b: usize) -> Result<()> {
        Pipeline::select(self, dst, cond, a, b)
    }

    fn relu(&mut self, dst: usize, a: usize) -> Result<()> {
        Pipeline::relu(self, dst, a)
    }

    fn mul(&mut self, dst: usize, a: usize, b: usize, width: u8) -> Result<()> {
        Pipeline::mul(self, dst, a, b, width)
    }

    fn copy_vr(&mut self, dst: usize, src: usize) -> Result<()> {
        Pipeline::copy_vr(self, dst, src)
    }

    fn copy_from(&mut self, other: &Self, src_vr: usize, dst_vr: usize) -> Result<()> {
        Pipeline::copy_from(self, other, src_vr, dst_vr)
    }

    fn shl(&mut self, dst: usize, src: usize, k: usize) -> Result<()> {
        Pipeline::shl(self, dst, src, k)
    }

    fn shr(&mut self, dst: usize, src: usize, k: usize) -> Result<()> {
        Pipeline::shr(self, dst, src, k)
    }

    fn rotate_left(
        &mut self,
        dst: usize,
        src: usize,
        tmp: usize,
        k: usize,
        width: usize,
    ) -> Result<()> {
        Pipeline::rotate_left(self, dst, src, tmp, k, width)
    }

    fn reverse(&mut self) {
        Pipeline::reverse(self);
    }

    fn elementwise_load(&mut self, addr_vr: usize, table: &Self, dst_vr: usize) -> Result<()> {
        Pipeline::elementwise_load(self, addr_vr, table, dst_vr)
    }

    fn primitives_executed(&self) -> u64 {
        Pipeline::primitives_executed(self)
    }

    fn energy(&self) -> PicoJoules {
        Pipeline::energy(self)
    }

    fn elapsed(&self) -> Cycles {
        Pipeline::elapsed(self)
    }

    fn reset_timer(&mut self) -> Cycles {
        Pipeline::reset_timer(self)
    }

    fn charge_external(&mut self, cost: MacroCost) {
        Pipeline::charge_external(self, cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PipelineConfig {
        PipelineConfig {
            depth: 8,
            elements: 8,
            vr_count: 10,
            scratch_cols: 8,
            family: LogicFamily::Oscar,
        }
    }

    /// Exercises the trait surface generically so both implementations
    /// compile against the same bounds the chip model uses.
    fn add_through_trait<P: DcePipeline>() -> (u64, u64) {
        let mut p = P::new(cfg()).expect("builds");
        p.write_value(0, 0, 25).expect("writes");
        p.write_value(1, 0, 17).expect("writes");
        p.add(2, 0, 1).expect("adds");
        (p.read_value(2, 0).expect("reads"), p.primitives_executed())
    }

    #[test]
    fn reference_and_packed_agree_through_the_trait() {
        let (sum_ref, prims_ref) = add_through_trait::<Pipeline>();
        let (sum_fast, prims_fast) = add_through_trait::<crate::packed::PackedPipeline>();
        assert_eq!(sum_ref, 42);
        assert_eq!(sum_fast, 42);
        assert_eq!(prims_ref, prims_fast);
    }

    #[test]
    fn signed_read_default_matches_reference_override() {
        let mut p = crate::packed::PackedPipeline::new(cfg()).expect("builds");
        p.write_value(0, 0, 0xFF).expect("writes");
        assert_eq!(p.read_value_signed(0, 0).expect("reads"), -1);
    }
}
