//! A RACER bit-pipeline: `depth` digital arrays with bit-striped vector
//! registers.
//!
//! Data layout (Figure 5 of the paper): a *vector register* (VR) is a column
//! index shared by all arrays; element `e` of a VR occupies row `e` in every
//! array, with bit `i` stored in array `i`. A pipeline with `elements` rows
//! therefore executes `elements`-wide SIMD operations, and a pipeline with
//! `depth` arrays handles `depth`-bit values.
//!
//! The functional model executes real cell-level gate programs for the
//! Boolean and additive macros (so AES on the DCE is bit-exact down to
//! individual OSCAR NOR pulses), while charging every macro's documented
//! cost from [`MacroOp::cost`] into a [`PipelineTimer`]. A handful of
//! wide macros (multiplication, comparison) execute at value level but
//! charge the same modelled cost; they are marked below.

use crate::array::DigitalArray;
use crate::logic::{BoolOp, LogicFamily};
use crate::macros::MacroOp;
use crate::timing::{MacroCost, PipelineTimer};
use crate::{Error, Result};
use darth_reram::{Cycles, PicoJoules};
use serde::{Deserialize, Serialize};

/// Geometry and logic family of a pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Number of arrays, i.e. the bit width of stored values (1..=64).
    pub depth: usize,
    /// Rows per array, i.e. the SIMD element count of a vector register.
    pub elements: usize,
    /// Architectural vector registers (columns visible to software).
    pub vr_count: usize,
    /// Scratch columns reserved for macro expansion (at least 8).
    pub scratch_cols: usize,
    /// The logic family executing the primitives.
    pub family: LogicFamily,
}

impl Default for PipelineConfig {
    /// Table 2 defaults: 64 arrays deep, 64×64 arrays, OSCAR primitives.
    fn default() -> Self {
        PipelineConfig {
            depth: 64,
            elements: 64,
            vr_count: 52,
            scratch_cols: 12,
            family: LogicFamily::Oscar,
        }
    }
}

impl PipelineConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when any dimension is unusable.
    pub fn validate(&self) -> Result<()> {
        if self.depth == 0 || self.depth > 64 {
            return Err(Error::InvalidConfig("depth must be in 1..=64"));
        }
        if self.elements == 0 {
            return Err(Error::InvalidConfig("elements must be nonzero"));
        }
        if self.vr_count == 0 {
            return Err(Error::InvalidConfig("vr_count must be nonzero"));
        }
        if self.scratch_cols < 8 {
            return Err(Error::InvalidConfig(
                "at least 8 scratch columns are required for the ADD chain",
            ));
        }
        Ok(())
    }

    /// Columns per array: architectural registers plus scratch.
    pub fn cols(&self) -> usize {
        self.vr_count + self.scratch_cols
    }
}

/// Encodes a signed value as the `depth`-bit two's-complement field a
/// pipeline stores — the host-side inverse of
/// [`Pipeline::read_value_signed`], used when staging signed operands
/// through `WriteImm` instructions.
///
/// # Errors
///
/// Returns [`Error::ValueTooWide`] when `value` is outside the signed
/// range of `depth` bits, and [`Error::InvalidConfig`] for a depth
/// outside `1..=64`.
pub fn twos_complement_field(value: i64, depth: usize) -> Result<u64> {
    if depth == 0 || depth > 64 {
        return Err(Error::InvalidConfig("depth must be in 1..=64"));
    }
    if depth == 64 {
        return Ok(value as u64);
    }
    let min = -(1i64 << (depth - 1));
    let max = (1i64 << (depth - 1)) - 1;
    if value < min || value > max {
        return Err(Error::ValueTooWide {
            value: value.unsigned_abs(),
            depth,
        });
    }
    Ok((value as u64) & ((1u64 << depth) - 1))
}

// Scratch column roles, offset from `vr_count`.
const SC_CARRY: usize = 0;
const SC_X1: usize = 1;
const SC_C1: usize = 2;
const SC_C2: usize = 3;
const SC_GATE0: usize = 4;
const SC_GATE1: usize = 5;
const SC_GATE2: usize = 6;
const SC_MASK: usize = 7;

/// A bit-pipelined digital PUM unit.
///
/// See the [crate-level example](crate) for basic usage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pipeline {
    config: PipelineConfig,
    arrays: Vec<DigitalArray>,
    timer: PipelineTimer,
}

impl Pipeline {
    /// Creates an erased pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for unusable geometry.
    pub fn new(config: PipelineConfig) -> Result<Self> {
        config.validate()?;
        let arrays = (0..config.depth)
            .map(|_| DigitalArray::new(config.elements, config.cols()))
            .collect::<Result<Vec<_>>>()?;
        Ok(Pipeline {
            config,
            arrays,
            timer: PipelineTimer::new(config.depth as u64),
        })
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Bit width of stored values.
    pub fn depth(&self) -> usize {
        self.config.depth
    }

    /// SIMD element count.
    pub fn elements(&self) -> usize {
        self.config.elements
    }

    /// Number of architectural vector registers.
    pub fn vr_count(&self) -> usize {
        self.config.vr_count
    }

    /// The logic family in use.
    pub fn family(&self) -> LogicFamily {
        self.config.family
    }

    fn check_vr(&self, vr: usize) -> Result<()> {
        if vr >= self.config.vr_count {
            return Err(Error::InvalidVectorRegister {
                vr,
                count: self.config.vr_count,
            });
        }
        Ok(())
    }

    fn check_elem(&self, element: usize) -> Result<()> {
        if element >= self.config.elements {
            return Err(Error::InvalidElement {
                element,
                count: self.config.elements,
            });
        }
        Ok(())
    }

    fn scratch(&self, role: usize) -> usize {
        self.config.vr_count + role
    }

    fn gate_scratch(&self) -> [usize; 3] {
        [
            self.scratch(SC_GATE0),
            self.scratch(SC_GATE1),
            self.scratch(SC_GATE2),
        ]
    }

    fn charge(&mut self, op: MacroOp) -> MacroCost {
        let cost = op.cost(
            self.config.family,
            self.config.depth as u64,
            self.config.elements as u64,
        );
        self.timer.issue(cost);
        cost
    }

    /// Mask for values representable at this depth.
    fn value_mask(&self) -> u64 {
        if self.config.depth == 64 {
            u64::MAX
        } else {
            (1u64 << self.config.depth) - 1
        }
    }

    // ------------------------------------------------------------------
    // Peripheral I/O
    // ------------------------------------------------------------------

    /// Writes one element of a vector register (one row of data per cycle,
    /// §4.1).
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range indices or a value wider than the
    /// pipeline depth.
    pub fn write_value(&mut self, vr: usize, element: usize, value: u64) -> Result<()> {
        self.check_vr(vr)?;
        self.check_elem(element)?;
        if value & !self.value_mask() != 0 {
            return Err(Error::ValueTooWide {
                value,
                depth: self.config.depth,
            });
        }
        for (i, array) in self.arrays.iter_mut().enumerate() {
            array.set_bit(element, vr, (value >> i) & 1 == 1);
        }
        self.charge(MacroOp::WriteElement);
        Ok(())
    }

    /// Reads one element of a vector register.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range indices.
    pub fn read_value(&mut self, vr: usize, element: usize) -> Result<u64> {
        self.check_vr(vr)?;
        self.check_elem(element)?;
        let mut value = 0u64;
        for (i, array) in self.arrays.iter().enumerate() {
            if array.bit(element, vr) {
                value |= 1 << i;
            }
        }
        self.charge(MacroOp::ReadElement);
        Ok(value)
    }

    /// Reads one element as a signed two's-complement value.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range indices.
    pub fn read_value_signed(&mut self, vr: usize, element: usize) -> Result<i64> {
        let raw = self.read_value(vr, element)?;
        let depth = self.config.depth;
        if depth == 64 {
            return Ok(raw as i64);
        }
        let sign = 1u64 << (depth - 1);
        if raw & sign != 0 {
            Ok((raw as i64) - (1i64 << depth))
        } else {
            Ok(raw as i64)
        }
    }

    /// Writes a full vector (one element per row).
    ///
    /// # Errors
    ///
    /// Returns an error if `values` exceeds the element count or any value
    /// is too wide.
    pub fn write_vector(&mut self, vr: usize, values: &[u64]) -> Result<()> {
        if values.len() > self.config.elements {
            return Err(Error::InvalidElement {
                element: values.len(),
                count: self.config.elements,
            });
        }
        for (e, &v) in values.iter().enumerate() {
            self.write_value(vr, e, v)?;
        }
        Ok(())
    }

    /// Reads a full vector.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range register.
    pub fn read_vector(&mut self, vr: usize) -> Result<Vec<u64>> {
        self.check_vr(vr)?;
        (0..self.config.elements)
            .map(|e| self.read_value(vr, e))
            .collect()
    }

    // ------------------------------------------------------------------
    // Boolean macros (cell-accurate)
    // ------------------------------------------------------------------

    /// `dst := op(a, b)` element-wise across the whole vector register.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range registers.
    pub fn bool_op(&mut self, op: BoolOp, dst: usize, a: usize, b: usize) -> Result<()> {
        self.check_vr(dst)?;
        self.check_vr(a)?;
        self.check_vr(b)?;
        let family = self.config.family;
        let scratch = self.gate_scratch();
        for array in &mut self.arrays {
            array.exec_gate(family, op, a, b, dst, &scratch)?;
        }
        self.charge(MacroOp::Bool(op));
        Ok(())
    }

    /// `dst := !a`, element-wise.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range registers.
    pub fn not(&mut self, dst: usize, a: usize) -> Result<()> {
        self.check_vr(dst)?;
        self.check_vr(a)?;
        let family = self.config.family;
        for array in &mut self.arrays {
            array.exec_gate(family, BoolOp::Nor, a, a, dst, &[])?;
        }
        self.charge(MacroOp::Not);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Arithmetic macros (cell-accurate ripple chains)
    // ------------------------------------------------------------------

    /// `dst := a + b` (mod `2^depth`), element-wise.
    ///
    /// Executes the real NOR-decomposed full-adder chain: the carry ripples
    /// from array to array through the inter-array buffer, exactly the wave
    /// that bit-pipelining overlaps across successive operations.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range registers.
    pub fn add(&mut self, dst: usize, a: usize, b: usize) -> Result<()> {
        self.check_vr(dst)?;
        self.check_vr(a)?;
        self.check_vr(b)?;
        self.ripple_add(dst, a, b, false)?;
        self.charge(MacroOp::Add);
        Ok(())
    }

    /// `dst := a - b` (mod `2^depth`), element-wise, via `a + !b + 1`.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range registers.
    pub fn sub(&mut self, dst: usize, a: usize, b: usize) -> Result<()> {
        self.check_vr(dst)?;
        self.check_vr(a)?;
        self.check_vr(b)?;
        // NOT b into the X1 scratch of each array, then add with carry-in 1.
        let family = self.config.family;
        let nb = self.scratch(SC_MASK);
        for array in &mut self.arrays {
            array.exec_gate(family, BoolOp::Nor, b, b, nb, &[])?;
        }
        self.ripple_add(dst, a, nb, true)?;
        self.charge(MacroOp::Sub);
        Ok(())
    }

    /// The full-adder wave shared by `add` and `sub`. `b_col` may be a
    /// scratch column (for the negated subtrahend).
    fn ripple_add(&mut self, dst: usize, a: usize, b_col: usize, carry_in: bool) -> Result<()> {
        let family = self.config.family;
        let elements = self.config.elements;
        let sc_carry = self.scratch(SC_CARRY);
        let sc_x1 = self.scratch(SC_X1);
        let sc_c1 = self.scratch(SC_C1);
        let sc_c2 = self.scratch(SC_C2);
        let gates = self.gate_scratch();
        let mut carry = vec![carry_in; elements];
        for array in &mut self.arrays {
            array.set_col(sc_carry, &carry)?;
            // x1 = a XOR b
            array.exec_gate(family, BoolOp::Xor, a, b_col, sc_x1, &gates)?;
            // c1 = a AND b ; c2 = x1 AND carry (compute before dst write so
            // dst may alias a or b)
            array.exec_gate(family, BoolOp::And, a, b_col, sc_c1, &gates)?;
            array.exec_gate(family, BoolOp::And, sc_x1, sc_carry, sc_c2, &gates)?;
            // sum = x1 XOR carry
            array.exec_gate(family, BoolOp::Xor, sc_x1, sc_carry, dst, &gates)?;
            // cout = c1 OR c2 -> carry bus
            array.exec_gate(family, BoolOp::Or, sc_c1, sc_c2, sc_carry, &gates)?;
            carry = array.col(sc_carry)?;
        }
        Ok(())
    }

    /// `dst := (a < b) ? all-ones : 0`, element-wise unsigned compare.
    ///
    /// Functionally value-level (the borrow chain is the same wave as
    /// [`Pipeline::sub`]); charges the modelled [`MacroOp::CmpLt`] cost.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range registers.
    pub fn cmp_lt(&mut self, dst: usize, a: usize, b: usize) -> Result<()> {
        self.check_vr(dst)?;
        self.check_vr(a)?;
        self.check_vr(b)?;
        let mask = self.value_mask();
        for e in 0..self.config.elements {
            let va = self.peek_value(a, e);
            let vb = self.peek_value(b, e);
            let result = if va < vb { mask } else { 0 };
            for (i, array) in self.arrays.iter_mut().enumerate() {
                array.set_bit(e, dst, (result >> i) & 1 == 1);
            }
        }
        self.charge(MacroOp::CmpLt);
        Ok(())
    }

    /// `dst := cond ? a : b`, element-wise, where `cond` is a 0/all-ones
    /// mask register (as produced by [`Pipeline::cmp_lt`]).
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range registers.
    pub fn select(&mut self, dst: usize, cond: usize, a: usize, b: usize) -> Result<()> {
        self.check_vr(dst)?;
        self.check_vr(cond)?;
        self.check_vr(a)?;
        self.check_vr(b)?;
        let family = self.config.family;
        let gates = self.gate_scratch();
        let t0 = self.scratch(SC_C1);
        let t1 = self.scratch(SC_C2);
        let nc = self.scratch(SC_MASK);
        for array in &mut self.arrays {
            array.exec_gate(family, BoolOp::And, cond, a, t0, &gates)?;
            array.exec_gate(family, BoolOp::Nor, cond, cond, nc, &[])?;
            array.exec_gate(family, BoolOp::And, nc, b, t1, &gates)?;
            array.exec_gate(family, BoolOp::Or, t0, t1, dst, &gates)?;
        }
        self.charge(MacroOp::Select);
        Ok(())
    }

    /// `dst := max(a, 0)` on two's-complement values (the CNN activation).
    ///
    /// The sign bit is read from the top array and broadcast down the
    /// pipeline as an AND mask.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range registers.
    pub fn relu(&mut self, dst: usize, a: usize) -> Result<()> {
        self.check_vr(dst)?;
        self.check_vr(a)?;
        let family = self.config.family;
        let gates = self.gate_scratch();
        let sc_mask = self.scratch(SC_MASK);
        let top = self.config.depth - 1;
        // mask = NOT sign, computed once in the top array
        self.arrays[top].exec_gate(family, BoolOp::Nor, a, a, sc_mask, &[])?;
        let mask = self.arrays[top].col(sc_mask)?;
        for array in &mut self.arrays {
            array.set_col(sc_mask, &mask)?;
            array.exec_gate(family, BoolOp::And, a, sc_mask, dst, &gates)?;
        }
        self.charge(MacroOp::Relu);
        Ok(())
    }

    /// `dst := a * b` (mod `2^depth`) over `width`-bit operands.
    ///
    /// Functionally value-level; charges the shift-add long-multiplication
    /// cost [`MacroOp::Mul`].
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range registers.
    pub fn mul(&mut self, dst: usize, a: usize, b: usize, width: u8) -> Result<()> {
        self.check_vr(dst)?;
        self.check_vr(a)?;
        self.check_vr(b)?;
        let mask = self.value_mask();
        for e in 0..self.config.elements {
            let va = self.peek_value(a, e);
            let vb = self.peek_value(b, e);
            let product = va.wrapping_mul(vb) & mask;
            for (i, array) in self.arrays.iter_mut().enumerate() {
                array.set_bit(e, dst, (product >> i) & 1 == 1);
            }
        }
        self.charge(MacroOp::Mul(width));
        Ok(())
    }

    // ------------------------------------------------------------------
    // Data movement
    // ------------------------------------------------------------------

    /// `dst := src` within this pipeline (Boolean identity per array).
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range registers.
    pub fn copy_vr(&mut self, dst: usize, src: usize) -> Result<()> {
        self.check_vr(dst)?;
        self.check_vr(src)?;
        for array in &mut self.arrays {
            array.copy_col(src, dst);
        }
        self.charge(MacroOp::CopyVr);
        Ok(())
    }

    /// Copies a vector register from another pipeline into this one.
    ///
    /// # Errors
    ///
    /// Returns [`Error::GeometryMismatch`] when the pipelines differ in
    /// depth or element count, or an index error.
    pub fn copy_from(&mut self, other: &Pipeline, src_vr: usize, dst_vr: usize) -> Result<()> {
        if other.config.depth != self.config.depth || other.config.elements != self.config.elements
        {
            return Err(Error::GeometryMismatch(
                "inter-pipeline copy requires identical depth and elements",
            ));
        }
        other.check_vr(src_vr)?;
        self.check_vr(dst_vr)?;
        for (dst_array, src_array) in self.arrays.iter_mut().zip(&other.arrays) {
            let col = src_array.col(src_vr)?;
            dst_array.set_col(dst_vr, &col)?;
        }
        self.charge(MacroOp::CopyAcross);
        Ok(())
    }

    /// `dst := src << k` (element-wise bit shift via inter-array moves).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShiftTooFar`] when `k` exceeds the depth.
    pub fn shl(&mut self, dst: usize, src: usize, k: usize) -> Result<()> {
        self.check_vr(dst)?;
        self.check_vr(src)?;
        if k > self.config.depth {
            return Err(Error::ShiftTooFar {
                amount: k,
                depth: self.config.depth,
            });
        }
        for i in (k..self.config.depth).rev() {
            let col = self.arrays[i - k].col(src)?;
            self.arrays[i].set_col(dst, &col)?;
        }
        for i in 0..k.min(self.config.depth) {
            self.arrays[i].clear_col(dst);
        }
        self.charge(MacroOp::ShiftBits(k as u8));
        Ok(())
    }

    /// `dst := src >> k` (logical right shift).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShiftTooFar`] when `k` exceeds the depth.
    pub fn shr(&mut self, dst: usize, src: usize, k: usize) -> Result<()> {
        self.check_vr(dst)?;
        self.check_vr(src)?;
        if k > self.config.depth {
            return Err(Error::ShiftTooFar {
                amount: k,
                depth: self.config.depth,
            });
        }
        for i in 0..self.config.depth.saturating_sub(k) {
            let col = self.arrays[i + k].col(src)?;
            self.arrays[i].set_col(dst, &col)?;
        }
        for i in self.config.depth.saturating_sub(k)..self.config.depth {
            self.arrays[i].clear_col(dst);
        }
        self.charge(MacroOp::ShiftBits(k as u8));
        Ok(())
    }

    /// `dst := rotl(src, k)` within the low `width` bits, using `tmp` as a
    /// scratch register. This is the ShiftRows building block (§5.3): left
    /// rotation is realised as `(src << k) | (src >> (width - k))` with the
    /// result masked to `width` bits.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range registers, a `width` above the
    /// pipeline depth, or `k >= width`.
    pub fn rotate_left(
        &mut self,
        dst: usize,
        src: usize,
        tmp: usize,
        k: usize,
        width: usize,
    ) -> Result<()> {
        if width > self.config.depth || width == 0 {
            return Err(Error::ShiftTooFar {
                amount: width,
                depth: self.config.depth,
            });
        }
        if k >= width {
            return Err(Error::ShiftTooFar {
                amount: k,
                depth: width,
            });
        }
        if k == 0 {
            return self.copy_vr(dst, src);
        }
        self.shl(tmp, src, k)?;
        self.shr(dst, src, width - k)?;
        self.bool_op(BoolOp::Or, dst, dst, tmp)?;
        // Mask away bits that the shl pushed above `width`.
        for i in width..self.config.depth {
            self.arrays[i].clear_col(dst);
        }
        Ok(())
    }

    /// Reverses the pipeline's bit order (drains in-flight work first).
    ///
    /// The paper uses reversal plus right shifts to emulate left shifts when
    /// no left terminal buffer exists; we expose it for the same purpose and
    /// for the ShiftRows macro.
    pub fn reverse(&mut self) {
        self.arrays.reverse();
        self.charge(MacroOp::Reverse);
    }

    /// Element-wise indexed load (§4.2): for each element `e`, reads the
    /// address in `addr_vr[e]`, fetches that value from `table`, and stores
    /// it into `dst_vr[e]`.
    ///
    /// Addresses index the table pipeline's register file in row-major
    /// order: address `a` maps to register `a / elements`, element
    /// `a % elements`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] if any address exceeds the
    /// table's register file, or a geometry error when depths differ.
    pub fn elementwise_load(
        &mut self,
        addr_vr: usize,
        table: &Pipeline,
        dst_vr: usize,
    ) -> Result<()> {
        if table.config.depth != self.config.depth {
            return Err(Error::GeometryMismatch(
                "element-wise load requires identical pipeline depth",
            ));
        }
        self.check_vr(addr_vr)?;
        self.check_vr(dst_vr)?;
        let capacity = (table.config.vr_count * table.config.elements) as u64;
        for e in 0..self.config.elements {
            let address = self.peek_value(addr_vr, e);
            if address >= capacity {
                return Err(Error::AddressOutOfRange {
                    address,
                    count: table.config.vr_count * table.config.elements,
                });
            }
            let tvr = (address as usize) / table.config.elements;
            let trow = (address as usize) % table.config.elements;
            let value = table.peek_value(tvr, trow);
            for (i, array) in self.arrays.iter_mut().enumerate() {
                array.set_bit(e, dst_vr, (value >> i) & 1 == 1);
            }
        }
        self.charge(MacroOp::ElementLoad);
        Ok(())
    }

    /// Reads a value without charging I/O cost (internal and test use; the
    /// hardware equivalent is the peripheral sensing that element-wise ops
    /// already pay for in their own cost).
    pub fn peek_value(&self, vr: usize, element: usize) -> u64 {
        let mut value = 0u64;
        for (i, array) in self.arrays.iter().enumerate() {
            if array.bit(element, vr) {
                value |= 1 << i;
            }
        }
        value
    }

    // ------------------------------------------------------------------
    // Accounting
    // ------------------------------------------------------------------

    /// Total native primitives executed by the pipeline's arrays.
    pub fn primitives_executed(&self) -> u64 {
        self.arrays.iter().map(|a| a.primitives_executed()).sum()
    }

    /// Dynamic energy of all executed primitives.
    pub fn energy(&self) -> PicoJoules {
        PicoJoules::new(
            self.primitives_executed() as f64 * self.config.family.energy_per_primitive_pj(),
        )
    }

    /// Elapsed cycles including a drain of in-flight work.
    pub fn elapsed(&self) -> Cycles {
        self.timer.elapsed()
    }

    /// Replaces the timer, returning the previous elapsed time. Used by the
    /// chip model when it re-schedules pipeline work itself.
    pub fn reset_timer(&mut self) -> Cycles {
        let old = std::mem::replace(
            &mut self.timer,
            PipelineTimer::new(self.config.depth as u64),
        );
        old.finish()
    }

    /// Issues an externally computed cost into this pipeline's timer (used
    /// by the HCT when the shift units write ACE partial products directly
    /// into the arrays).
    pub fn charge_external(&mut self, cost: MacroCost) {
        self.timer.issue(cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipe(depth: usize) -> Pipeline {
        Pipeline::new(PipelineConfig {
            depth,
            elements: 8,
            vr_count: 10,
            scratch_cols: 8,
            family: LogicFamily::Oscar,
        })
        .expect("valid config")
    }

    #[test]
    fn twos_complement_field_round_trips_through_signed_read() {
        let mut p = pipe(8);
        for v in [-128i64, -1, 0, 1, 127] {
            let field = twos_complement_field(v, 8).expect("fits");
            p.write_value(0, 0, field).expect("writes");
            assert_eq!(p.read_value_signed(0, 0).expect("reads"), v, "value {v}");
        }
    }

    #[test]
    fn twos_complement_field_rejects_out_of_range() {
        assert!(matches!(
            twos_complement_field(128, 8),
            Err(Error::ValueTooWide { .. })
        ));
        assert!(matches!(
            twos_complement_field(-129, 8),
            Err(Error::ValueTooWide { .. })
        ));
        assert!(matches!(
            twos_complement_field(0, 0),
            Err(Error::InvalidConfig(_))
        ));
        assert!(matches!(
            twos_complement_field(0, 65),
            Err(Error::InvalidConfig(_))
        ));
        // Full width passes any value through unchanged.
        assert_eq!(twos_complement_field(-1, 64).expect("fits"), u64::MAX);
        assert_eq!(twos_complement_field(i64::MIN, 64).expect("fits"), 1 << 63);
    }

    #[test]
    fn config_validation() {
        assert!(Pipeline::new(PipelineConfig {
            depth: 0,
            ..PipelineConfig::default()
        })
        .is_err());
        assert!(Pipeline::new(PipelineConfig {
            depth: 65,
            ..PipelineConfig::default()
        })
        .is_err());
        assert!(Pipeline::new(PipelineConfig {
            scratch_cols: 2,
            ..PipelineConfig::default()
        })
        .is_err());
        assert!(Pipeline::new(PipelineConfig::default()).is_ok());
    }

    #[test]
    fn value_round_trip() {
        let mut p = pipe(16);
        p.write_value(0, 3, 0xBEEF).expect("fits");
        assert_eq!(p.read_value(0, 3).expect("in range"), 0xBEEF);
    }

    #[test]
    fn value_too_wide_is_rejected() {
        let mut p = pipe(8);
        assert!(matches!(
            p.write_value(0, 0, 256),
            Err(Error::ValueTooWide { .. })
        ));
        p.write_value(0, 0, 255).expect("fits");
    }

    #[test]
    fn signed_read() {
        let mut p = pipe(8);
        p.write_value(0, 0, 0xFF).expect("fits");
        assert_eq!(p.read_value_signed(0, 0).expect("in range"), -1);
        p.write_value(0, 1, 0x7F).expect("fits");
        assert_eq!(p.read_value_signed(0, 1).expect("in range"), 127);
    }

    #[test]
    fn vector_round_trip() {
        let mut p = pipe(8);
        let values = vec![1, 2, 3, 250, 0, 7, 8, 9];
        p.write_vector(1, &values).expect("fits");
        assert_eq!(p.read_vector(1).expect("in range"), values);
    }

    #[test]
    fn bool_ops_elementwise() {
        let mut p = pipe(8);
        p.write_vector(0, &[0b1100; 8]).expect("fits");
        p.write_vector(1, &[0b1010; 8]).expect("fits");
        p.bool_op(BoolOp::Xor, 2, 0, 1).expect("executes");
        assert_eq!(p.read_value(2, 0).expect("in range"), 0b0110);
        p.bool_op(BoolOp::And, 3, 0, 1).expect("executes");
        assert_eq!(p.read_value(3, 0).expect("in range"), 0b1000);
        p.not(4, 0).expect("executes");
        assert_eq!(p.read_value(4, 0).expect("in range"), 0b1111_0011);
    }

    #[test]
    fn add_is_exact_for_all_rows() {
        let mut p = pipe(16);
        let a: Vec<u64> = vec![0, 1, 255, 1000, 65535, 32768, 42, 9999];
        let b: Vec<u64> = vec![0, 1, 1, 24, 1, 32768, 58, 1];
        p.write_vector(0, &a).expect("fits");
        p.write_vector(1, &b).expect("fits");
        p.add(2, 0, 1).expect("executes");
        for e in 0..8 {
            let expected = (a[e] + b[e]) & 0xFFFF;
            assert_eq!(p.read_value(2, e).expect("in range"), expected, "row {e}");
        }
    }

    #[test]
    fn add_functional_primitives_match_cost_model() {
        let mut p = pipe(16);
        p.write_vector(0, &[3; 8]).expect("fits");
        p.write_vector(1, &[5; 8]).expect("fits");
        let before = p.primitives_executed();
        p.add(2, 0, 1).expect("executes");
        let actual = p.primitives_executed() - before;
        let modelled = MacroOp::Add.cost(LogicFamily::Oscar, 16, 8).primitives;
        assert_eq!(actual, modelled);
    }

    #[test]
    fn sub_wraps_like_twos_complement() {
        let mut p = pipe(8);
        p.write_vector(0, &[5; 8]).expect("fits");
        p.write_vector(1, &[7; 8]).expect("fits");
        p.sub(2, 0, 1).expect("executes");
        assert_eq!(p.read_value(2, 0).expect("in range"), 254); // -2 mod 256
        assert_eq!(p.read_value_signed(2, 0).expect("in range"), -2);
    }

    #[test]
    fn add_aliasing_dst_onto_src() {
        let mut p = pipe(8);
        p.write_vector(0, &[10; 8]).expect("fits");
        p.write_vector(1, &[32; 8]).expect("fits");
        p.add(0, 0, 1).expect("executes");
        assert_eq!(p.read_value(0, 0).expect("in range"), 42);
    }

    #[test]
    fn cmp_lt_and_select() {
        let mut p = pipe(8);
        p.write_vector(0, &[5, 9, 3, 3, 0, 255, 7, 8])
            .expect("fits");
        p.write_vector(1, &[9, 5, 3, 4, 1, 0, 7, 7]).expect("fits");
        p.cmp_lt(2, 0, 1).expect("executes");
        assert_eq!(p.read_value(2, 0).expect("in range"), 0xFF);
        assert_eq!(p.read_value(2, 1).expect("in range"), 0);
        assert_eq!(p.read_value(2, 2).expect("in range"), 0);
        p.select(3, 2, 0, 1).expect("executes");
        assert_eq!(p.read_value(3, 0).expect("in range"), 5); // 5 < 9: take a
        assert_eq!(p.read_value(3, 1).expect("in range"), 5); // 9 >= 5: take b
    }

    #[test]
    fn relu_clamps_negative() {
        let mut p = pipe(8);
        p.write_vector(0, &[0x05, 0xFB, 0x80, 0x00, 0x7F, 0xFF, 1, 2])
            .expect("fits");
        p.relu(1, 0).expect("executes");
        assert_eq!(p.read_value(1, 0).expect("in range"), 5);
        assert_eq!(p.read_value(1, 1).expect("in range"), 0); // -5 -> 0
        assert_eq!(p.read_value(1, 2).expect("in range"), 0); // -128 -> 0
        assert_eq!(p.read_value(1, 4).expect("in range"), 0x7F);
        assert_eq!(p.read_value(1, 5).expect("in range"), 0); // -1 -> 0
    }

    #[test]
    fn mul_matches_integer_semantics() {
        let mut p = pipe(16);
        p.write_vector(0, &[3, 255, 0, 1000, 7, 2, 9, 10])
            .expect("fits");
        p.write_vector(1, &[4, 255, 9, 100, 7, 2, 9, 10])
            .expect("fits");
        p.mul(2, 0, 1, 8).expect("executes");
        assert_eq!(p.read_value(2, 0).expect("in range"), 12);
        assert_eq!(p.read_value(2, 1).expect("in range"), (255 * 255) & 0xFFFF);
        assert_eq!(p.read_value(2, 3).expect("in range"), (1000 * 100) & 0xFFFF);
    }

    #[test]
    fn shifts_move_bits_between_arrays() {
        let mut p = pipe(8);
        p.write_vector(0, &[0b0001_0110; 8]).expect("fits");
        p.shl(1, 0, 2).expect("in range");
        assert_eq!(p.read_value(1, 0).expect("in range"), 0b0101_1000);
        p.shr(2, 0, 3).expect("in range");
        assert_eq!(p.read_value(2, 0).expect("in range"), 0b0000_0010);
        assert!(matches!(p.shl(1, 0, 9), Err(Error::ShiftTooFar { .. })));
    }

    #[test]
    fn shift_in_place() {
        let mut p = pipe(8);
        p.write_vector(0, &[0b1; 8]).expect("fits");
        p.shl(0, 0, 1).expect("in range");
        assert_eq!(p.read_value(0, 0).expect("in range"), 0b10);
        p.shr(0, 0, 1).expect("in range");
        assert_eq!(p.read_value(0, 0).expect("in range"), 0b1);
    }

    #[test]
    fn rotate_left_32bit_words() {
        let mut p = pipe(32);
        p.write_vector(0, &[0x8000_0001; 8]).expect("fits");
        p.rotate_left(1, 0, 2, 8, 32).expect("executes");
        assert_eq!(p.read_value(1, 0).expect("in range"), 0x0000_0180);
        p.rotate_left(3, 0, 2, 0, 32).expect("rot 0 is copy");
        assert_eq!(p.read_value(3, 0).expect("in range"), 0x8000_0001);
    }

    #[test]
    fn rotate_left_respects_sub_width() {
        let mut p = pipe(32);
        // rotate an 8-bit value stored in a 32-bit pipeline
        p.write_vector(0, &[0b1000_0001; 8]).expect("fits");
        p.rotate_left(1, 0, 2, 1, 8).expect("executes");
        assert_eq!(p.read_value(1, 0).expect("in range"), 0b0000_0011);
    }

    #[test]
    fn reverse_flips_bit_order() {
        let mut p = pipe(8);
        p.write_vector(0, &[0b0000_0001; 8]).expect("fits");
        p.reverse();
        assert_eq!(p.read_value(0, 0).expect("in range"), 0b1000_0000);
        p.reverse();
        assert_eq!(p.read_value(0, 0).expect("in range"), 0b0000_0001);
    }

    #[test]
    fn copy_within_and_across_pipelines() {
        let mut a = pipe(8);
        let mut b = pipe(8);
        a.write_vector(0, &[11; 8]).expect("fits");
        a.copy_vr(1, 0).expect("executes");
        assert_eq!(a.read_value(1, 0).expect("in range"), 11);
        b.copy_from(&a, 1, 2).expect("geometry matches");
        assert_eq!(b.read_value(2, 7).expect("in range"), 11);
    }

    #[test]
    fn copy_across_rejects_mismatched_geometry() {
        let a = pipe(8);
        let mut b = pipe(16);
        assert!(matches!(
            b.copy_from(&a, 0, 0),
            Err(Error::GeometryMismatch(_))
        ));
    }

    #[test]
    fn elementwise_load_gathers_from_table() {
        let mut table = pipe(8);
        // table register file: vr v, element e holds v * 8 + e + 100
        for vr in 0..4 {
            let vals: Vec<u64> = (0..8).map(|e| (vr as u64 * 8 + e + 100) & 0xFF).collect();
            table.write_vector(vr, &vals).expect("fits");
        }
        let mut p = pipe(8);
        p.write_vector(0, &[0, 9, 17, 31, 2, 3, 4, 5])
            .expect("fits");
        p.elementwise_load(0, &table, 1).expect("in range");
        assert_eq!(p.read_value(1, 0).expect("in range"), 100);
        assert_eq!(p.read_value(1, 1).expect("in range"), 109);
        assert_eq!(p.read_value(1, 2).expect("in range"), 117);
        assert_eq!(p.read_value(1, 3).expect("in range"), 131);
    }

    #[test]
    fn elementwise_load_rejects_bad_address() {
        let table = pipe(8);
        let mut p = pipe(8);
        p.write_vector(0, &[255; 8]).expect("fits");
        assert!(matches!(
            p.elementwise_load(0, &table, 1),
            Err(Error::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn timing_accumulates_and_resets() {
        let mut p = pipe(8);
        p.write_vector(0, &[1; 8]).expect("fits");
        p.write_vector(1, &[2; 8]).expect("fits");
        let t0 = p.elapsed();
        p.add(2, 0, 1).expect("executes");
        let t1 = p.elapsed();
        assert!(t1 > t0);
        let total = p.reset_timer();
        assert_eq!(total, t1);
        assert_eq!(p.elapsed(), Cycles::ZERO);
    }

    #[test]
    fn energy_grows_with_work() {
        let mut p = pipe(8);
        p.write_vector(0, &[1; 8]).expect("fits");
        p.write_vector(1, &[2; 8]).expect("fits");
        let e0 = p.energy();
        p.add(2, 0, 1).expect("executes");
        assert!(p.energy() > e0);
    }

    #[test]
    fn invalid_vr_is_rejected_everywhere() {
        let mut p = pipe(8);
        assert!(p.write_value(10, 0, 1).is_err());
        assert!(p.read_value(10, 0).is_err());
        assert!(p.bool_op(BoolOp::Xor, 10, 0, 1).is_err());
        assert!(p.add(0, 10, 1).is_err());
        assert!(p.relu(0, 10).is_err());
        assert!(p.copy_vr(0, 10).is_err());
    }
}
