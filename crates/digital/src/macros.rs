//! The digital PUM macro library and its cost model.
//!
//! Every arithmetic operation a RACER pipeline performs decomposes into the
//! logic family's primitives. This module centralises those decompositions
//! as [`MacroOp`] descriptors: [`MacroOp::cost`] yields the stage/primitive
//! counts used both by the functional simulator
//! ([`crate::pipeline::Pipeline`]) and by the analytical chip-level model,
//! so the two can never drift apart.
//!
//! ## Gate-count table (per bit position)
//!
//! | macro | OSCAR primitives | ideal primitives | notes |
//! |-------|-----------------|------------------|-------|
//! | Bool(NOR/OR) | 1 | 1 | native |
//! | Bool(AND/NAND) | 3 | 1 | `NOR(!a,!b)` / `OR(!a,!b)` |
//! | Bool(XOR/XNOR) | 5 | 1 | `NOR(NOR(a,b), AND(a,b))` |
//! | Not | 1 | 1 | `NOR(a,a)` |
//! | Add | 17 | 5 | two XORs, two ANDs, one OR + carry |
//! | Sub | 18 | 6 | `a + !b + 1` |
//! | CmpLt | 18 | 6 | borrow chain of SUB |
//! | Select | 8 | 3 | `OR(AND(c,a), AND(!c,b))` |
//! | Relu | 4 | 2 | sign-bit broadcast + AND mask |
//! | CopyVr | 1 | 1 | `OR(a,a)` identity |
//! | ShiftBits(k) | 2 (barrier) | 2 (barrier) | inter-array column moves |
//! | Reverse | 2 (barrier) | 2 (barrier) | drain + reversed propagation |
//! | Mul(w) | w·20 | w·6 | shift-add long multiplication |
//! | ElementLoad | 3 cycles/element (barrier) | same | peripheral row I/O |
//! | WriteElement / ReadElement | 1 cycle | same | one row of data per cycle (§4.1) |

use crate::logic::{BoolOp, LogicFamily};
use crate::timing::MacroCost;
use serde::{Deserialize, Serialize};

/// Primitive counts for the software-visible macro operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MacroOp {
    /// An element-wise Boolean operation between two vector registers.
    Bool(BoolOp),
    /// Element-wise NOT of a vector register.
    Not,
    /// Ripple-carry addition of two vector registers.
    Add,
    /// Ripple-borrow subtraction.
    Sub,
    /// Unsigned less-than comparison producing a 0/1 mask.
    CmpLt,
    /// Bitwise select: `out = cond ? a : b` with a 0/1 mask register.
    Select,
    /// Rectified linear unit on two's-complement values.
    Relu,
    /// Copy one vector register to another within a pipeline.
    CopyVr,
    /// Copy a vector register to another pipeline (peripheral transfer).
    CopyAcross,
    /// Shift every element left/right by a constant number of bits.
    ShiftBits(u8),
    /// Reverse the pipeline's bit order (used to emulate left shifts).
    Reverse,
    /// Long multiplication of two `width`-bit operands.
    Mul(u8),
    /// Element-wise indexed load from an adjacent pipeline (§4.2).
    ElementLoad,
    /// Peripheral write of one element (one row of data per cycle, §4.1).
    WriteElement,
    /// Peripheral read of one element.
    ReadElement,
}

impl MacroOp {
    /// Native primitives per bit position for this macro.
    pub fn primitives_per_stage(self, family: LogicFamily) -> u64 {
        match self {
            MacroOp::Bool(op) => family.primitives_for(op),
            MacroOp::Not => 1,
            MacroOp::Add => match family {
                // x1 = XOR(a,b): 5; sum = XOR(x1,c): 5; c1 = AND(a,b): 3;
                // c2 = AND(x1,c): 3; cout = OR(c1,c2): 1
                LogicFamily::Oscar => 17,
                LogicFamily::Ideal => 5,
            },
            MacroOp::Sub | MacroOp::CmpLt => match family {
                LogicFamily::Oscar => 18, // NOT b + full adder
                LogicFamily::Ideal => 6,
            },
            MacroOp::Select => match family {
                // t0 = AND(c,a): 3; nc = NOT c: 1; t1 = AND(nc,b): 3; out = OR: 1
                LogicFamily::Oscar => 8,
                LogicFamily::Ideal => 3,
            },
            MacroOp::Relu => match family {
                // mask = NOT sign (broadcast along pipeline): 1; AND: 3
                LogicFamily::Oscar => 4,
                LogicFamily::Ideal => 2,
            },
            MacroOp::CopyVr => 1,
            MacroOp::CopyAcross => 1,
            MacroOp::ShiftBits(_) | MacroOp::Reverse => 2,
            MacroOp::Mul(width) => {
                let per_bit = match family {
                    // mask AND (3) + full adder (17)
                    LogicFamily::Oscar => 20,
                    LogicFamily::Ideal => 6,
                };
                per_bit * width as u64
            }
            MacroOp::ElementLoad => 3,
            MacroOp::WriteElement | MacroOp::ReadElement => 1,
        }
    }

    /// Whether the macro breaks bit-pipelining (forces a drain).
    pub fn is_barrier(self) -> bool {
        matches!(
            self,
            MacroOp::ShiftBits(_) | MacroOp::Reverse | MacroOp::ElementLoad
        )
    }

    /// Full cost of one instance of this macro on a pipeline with `depth`
    /// arrays and `elements` rows.
    ///
    /// Peripheral I/O macros (`ElementLoad`, `WriteElement`, `ReadElement`)
    /// cost cycles per *element* rather than per bit position; everything
    /// else flows through the bit pipeline.
    pub fn cost(self, family: LogicFamily, depth: u64, elements: u64) -> MacroCost {
        match self {
            MacroOp::ElementLoad => MacroCost {
                // read address row + read table row + write back, per element
                stage_cycles: 3,
                stages: elements,
                primitives: 0,
                barrier: true,
            },
            MacroOp::WriteElement | MacroOp::ReadElement => MacroCost {
                stage_cycles: 1,
                stages: 1,
                primitives: 0,
                barrier: false,
            },
            _ => {
                let prims = self.primitives_per_stage(family);
                MacroCost {
                    stage_cycles: prims * family.cycles_per_primitive(),
                    stages: depth,
                    primitives: prims * depth,
                    barrier: self.is_barrier(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_stage_cost_oscar() {
        let c = MacroOp::Add.cost(LogicFamily::Oscar, 64, 64);
        assert_eq!(c.stage_cycles, 34); // 17 primitives x 2 cycles
        assert_eq!(c.stages, 64);
        assert_eq!(c.primitives, 17 * 64);
        assert!(!c.barrier);
    }

    #[test]
    fn ideal_is_cheaper_everywhere() {
        for op in [
            MacroOp::Bool(BoolOp::Xor),
            MacroOp::Add,
            MacroOp::Sub,
            MacroOp::Select,
            MacroOp::Mul(8),
        ] {
            let oscar = op.primitives_per_stage(LogicFamily::Oscar);
            let ideal = op.primitives_per_stage(LogicFamily::Ideal);
            assert!(ideal < oscar, "{op:?}: {ideal} !< {oscar}");
        }
    }

    #[test]
    fn shifts_are_barriers() {
        assert!(MacroOp::ShiftBits(1).is_barrier());
        assert!(MacroOp::Reverse.is_barrier());
        assert!(MacroOp::ElementLoad.is_barrier());
        assert!(!MacroOp::Add.is_barrier());
        assert!(!MacroOp::CopyVr.is_barrier());
    }

    #[test]
    fn element_load_scales_with_elements() {
        let c = MacroOp::ElementLoad.cost(LogicFamily::Oscar, 64, 64);
        assert_eq!(c.latency().get(), 3 * 64);
        let c16 = MacroOp::ElementLoad.cost(LogicFamily::Oscar, 64, 16);
        assert_eq!(c16.latency().get(), 3 * 16);
    }

    #[test]
    fn element_io_is_one_cycle() {
        let c = MacroOp::WriteElement.cost(LogicFamily::Oscar, 64, 64);
        assert_eq!(c.latency().get(), 1);
    }

    #[test]
    fn mul_scales_with_width() {
        let m8 = MacroOp::Mul(8).primitives_per_stage(LogicFamily::Oscar);
        let m16 = MacroOp::Mul(16).primitives_per_stage(LogicFamily::Oscar);
        assert_eq!(m16, 2 * m8);
    }

    #[test]
    fn bool_macro_follows_family_table() {
        for op in BoolOp::ALL {
            assert_eq!(
                MacroOp::Bool(op).primitives_per_stage(LogicFamily::Oscar),
                LogicFamily::Oscar.primitives_for(op)
            );
        }
    }
}
