//! Logic families for digital PUM.
//!
//! A *logic family* (Section 2.2.2) fixes which Boolean primitives the
//! memory arrays can execute natively and what each costs. DARTH-PUM's
//! evaluation uses [`LogicFamily::Oscar`] — NOR and OR in ReRAM with an
//! output-preset step — plus an [`LogicFamily::Ideal`] family for the
//! Figure 7 ablation, where any two-input Boolean operator completes in a
//! single cycle.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A two-input Boolean operator (NOT is modelled as `Nor(a, a)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoolOp {
    /// `!(a | b)` — OSCAR's native primitive.
    Nor,
    /// `a | b` — OSCAR's second native primitive.
    Or,
    /// `a & b`.
    And,
    /// `!(a & b)`.
    Nand,
    /// `a ^ b`.
    Xor,
    /// `!(a ^ b)`.
    Xnor,
}

impl BoolOp {
    /// Evaluates the operator on two bits.
    pub fn eval(self, a: bool, b: bool) -> bool {
        match self {
            BoolOp::Nor => !(a | b),
            BoolOp::Or => a | b,
            BoolOp::And => a & b,
            BoolOp::Nand => !(a & b),
            BoolOp::Xor => a ^ b,
            BoolOp::Xnor => !(a ^ b),
        }
    }

    /// All operators, for exhaustive property tests.
    pub const ALL: [BoolOp; 6] = [
        BoolOp::Nor,
        BoolOp::Or,
        BoolOp::And,
        BoolOp::Nand,
        BoolOp::Xor,
        BoolOp::Xnor,
    ];
}

impl fmt::Display for BoolOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BoolOp::Nor => "NOR",
            BoolOp::Or => "OR",
            BoolOp::And => "AND",
            BoolOp::Nand => "NAND",
            BoolOp::Xor => "XOR",
            BoolOp::Xnor => "XNOR",
        };
        f.write_str(name)
    }
}

/// The set of primitives an array can execute natively, with their costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum LogicFamily {
    /// OSCAR (Truong et al., JETCAS'22): NOR and OR primitives in ReRAM.
    ///
    /// Executing a primitive takes two cycles: one to preset the output
    /// devices to '1' and one to apply the `V_NOR` / `V_NOR+Δ` pulse that
    /// conditionally switches them (Figure 4 of the paper).
    #[default]
    Oscar,
    /// The Figure 7 ablation: any two-input Boolean operator in one cycle
    /// with no preset, as an upper bound on richer families such as FELIX.
    Ideal,
}

impl LogicFamily {
    /// Whether `op` is a native single-primitive operation in this family.
    pub fn is_native(self, op: BoolOp) -> bool {
        match self {
            LogicFamily::Oscar => matches!(op, BoolOp::Nor | BoolOp::Or),
            LogicFamily::Ideal => true,
        }
    }

    /// Cycles to execute one native primitive across a whole array column
    /// set (all rows in parallel).
    pub fn cycles_per_primitive(self) -> u64 {
        match self {
            // preset + pulse
            LogicFamily::Oscar => 2,
            LogicFamily::Ideal => 1,
        }
    }

    /// Number of native primitives needed to realise `op` once, counting
    /// the scratch sub-operations of the NOR-only decomposition.
    ///
    /// The OSCAR decompositions used by [`crate::array::DigitalArray`]:
    ///
    /// | gate | expansion | primitives |
    /// |------|-----------|------------|
    /// | NOR  | native | 1 |
    /// | OR   | native | 1 |
    /// | AND  | `NOR(NOR(a,a), NOR(b,b))` | 3 |
    /// | NAND | `OR(NOR(a,a), NOR(b,b))` | 3 |
    /// | XOR  | `NOR(NOR(a,b), NOR(NOR(a,a), NOR(b,b)))` | 5 |
    /// | XNOR | `OR(NOR(a,b), AND(a,b))` | 5 |
    pub fn primitives_for(self, op: BoolOp) -> u64 {
        match self {
            LogicFamily::Ideal => 1,
            LogicFamily::Oscar => match op {
                BoolOp::Nor | BoolOp::Or => 1,
                BoolOp::And | BoolOp::Nand => 3,
                BoolOp::Xor | BoolOp::Xnor => 5,
            },
        }
    }

    /// Cycles to realise `op` once: primitives × cycles-per-primitive.
    pub fn cycles_for(self, op: BoolOp) -> u64 {
        self.primitives_for(op) * self.cycles_per_primitive()
    }

    /// Scratch columns the decomposition of `op` needs (peak simultaneous).
    pub fn scratch_for(self, op: BoolOp) -> usize {
        match self {
            LogicFamily::Ideal => 0,
            LogicFamily::Oscar => match op {
                BoolOp::Nor | BoolOp::Or => 0,
                BoolOp::And | BoolOp::Nand => 2,
                BoolOp::Xor | BoolOp::Xnor => 3,
            },
        }
    }

    /// Dynamic energy of one native primitive over one array, in pJ.
    ///
    /// Table 3: Boolean operation power is 8 mW for an active pipeline of
    /// 64 arrays (the table's DCE rows are per-unit totals, as with the
    /// area entries), i.e. 0.125 mW per array. At 1 GHz an OSCAR primitive
    /// (preset + pulse, 2 cycles) therefore costs 0.25 pJ and an ideal
    /// single-cycle primitive 0.125 pJ.
    pub fn energy_per_primitive_pj(self) -> f64 {
        const PIPELINE_BOOL_POWER_MW: f64 = 8.0;
        const ARRAYS_PER_PIPELINE: f64 = 64.0;
        PIPELINE_BOOL_POWER_MW / ARRAYS_PER_PIPELINE * self.cycles_per_primitive() as f64
    }
}

impl fmt::Display for LogicFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicFamily::Oscar => f.write_str("OSCAR"),
            LogicFamily::Ideal => f.write_str("Ideal"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_op_truth_tables() {
        let cases = [(false, false), (false, true), (true, false), (true, true)];
        for (a, b) in cases {
            assert_eq!(BoolOp::Nor.eval(a, b), !(a | b));
            assert_eq!(BoolOp::Or.eval(a, b), a | b);
            assert_eq!(BoolOp::And.eval(a, b), a & b);
            assert_eq!(BoolOp::Nand.eval(a, b), !(a & b));
            assert_eq!(BoolOp::Xor.eval(a, b), a ^ b);
            assert_eq!(BoolOp::Xnor.eval(a, b), !(a ^ b));
        }
    }

    #[test]
    fn oscar_native_ops() {
        assert!(LogicFamily::Oscar.is_native(BoolOp::Nor));
        assert!(LogicFamily::Oscar.is_native(BoolOp::Or));
        assert!(!LogicFamily::Oscar.is_native(BoolOp::And));
        assert!(!LogicFamily::Oscar.is_native(BoolOp::Xor));
    }

    #[test]
    fn ideal_everything_is_one_primitive() {
        for op in BoolOp::ALL {
            assert!(LogicFamily::Ideal.is_native(op));
            assert_eq!(LogicFamily::Ideal.primitives_for(op), 1);
            assert_eq!(LogicFamily::Ideal.cycles_for(op), 1);
            assert_eq!(LogicFamily::Ideal.scratch_for(op), 0);
        }
    }

    #[test]
    fn oscar_costs_are_monotone_in_complexity() {
        let f = LogicFamily::Oscar;
        assert_eq!(f.primitives_for(BoolOp::Nor), 1);
        assert_eq!(f.primitives_for(BoolOp::And), 3);
        assert_eq!(f.primitives_for(BoolOp::Xor), 5);
        assert_eq!(f.cycles_for(BoolOp::Xor), 10); // 5 primitives x 2 cycles
    }

    #[test]
    fn oscar_primitive_energy_matches_table3() {
        // 8 mW / 64 arrays x 2 cycles at 1 GHz = 0.25 pJ
        assert!((LogicFamily::Oscar.energy_per_primitive_pj() - 0.25).abs() < 1e-12);
        assert!((LogicFamily::Ideal.energy_per_primitive_pj() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn display_impls() {
        assert_eq!(format!("{}", LogicFamily::Oscar), "OSCAR");
        assert_eq!(format!("{}", BoolOp::Xor), "XOR");
    }

    #[test]
    fn default_family_is_oscar() {
        assert_eq!(LogicFamily::default(), LogicFamily::Oscar);
    }
}
