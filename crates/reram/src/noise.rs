//! Seeded, reproducible noise sources.
//!
//! All stochastic behaviour in the simulator — programming noise, read
//! noise, drift, stuck-at faults — flows through a [`NoiseRng`]. Experiments
//! therefore reproduce exactly given the same seed, which is essential for
//! the paper-vs-measured tables in `EXPERIMENTS.md`.
//!
//! The generator is a self-contained xoshiro256++ with splitmix64 seeding.
//! Owning the generator (rather than wrapping `rand`'s `StdRng`) keeps the
//! noise streams `Clone`-able — needed to snapshot array state — and pins
//! the exact bit streams across `rand` upgrades.

use serde::{Deserialize, Serialize};

/// A deterministic random source for device non-idealities.
///
/// Gaussian samples use the Box–Muller transform (the approved offline crate
/// set has no `rand_distr`), with the spare variate cached so consecutive
/// draws cost one transcendental pair per two samples.
///
/// # Example
///
/// ```
/// use darth_reram::noise::NoiseRng;
///
/// let mut a = NoiseRng::seed_from(42);
/// let mut b = NoiseRng::seed_from(42);
/// assert_eq!(a.gaussian(0.0, 1.0).to_bits(), b.gaussian(0.0, 1.0).to_bits());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseRng {
    state: [u64; 4],
    cached_gaussian: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl NoiseRng {
    /// Creates a noise source from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        NoiseRng {
            state,
            cached_gaussian: None,
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[0]
            .wrapping_add(self.state[3])
            .rotate_left(23)
            .wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Splits off an independent child stream.
    ///
    /// Used to give each array / ADC / cell population its own stream so
    /// that adding a consumer does not perturb every other component's
    /// sequence.
    pub fn fork(&mut self) -> NoiseRng {
        NoiseRng::seed_from(self.next_u64())
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits -> double in [0, 1)
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform_range requires lo < hi");
        lo + (hi - lo) * self.uniform()
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index requires a nonempty range");
        // Lemire's multiply-shift rejection-free approximation is fine here;
        // a tiny modulo bias is irrelevant for noise injection, but use
        // 128-bit multiply to keep the distribution near-uniform anyway.
        let x = self.next_u64() as u128;
        ((x * n as u128) >> 64) as usize
    }

    /// A Bernoulli trial with probability `p` of returning `true`.
    ///
    /// `p` is clamped to `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 {
            return false;
        }
        if p == 1.0 {
            return true;
        }
        self.uniform() < p
    }

    /// A Gaussian sample with the given mean and standard deviation.
    ///
    /// A non-positive `sigma` returns `mean` exactly, which lets callers
    /// disable a noise source by zeroing its sigma.
    pub fn gaussian(&mut self, mean: f64, sigma: f64) -> f64 {
        if sigma <= 0.0 {
            return mean;
        }
        mean + sigma * self.standard_normal()
    }

    /// A lognormal sample: `exp(N(mu, sigma))`.
    ///
    /// MILO-style programming-noise models express conductance error as a
    /// multiplicative lognormal factor; `lognormal(0.0, s)` is a factor with
    /// median 1.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.gaussian(mu, sigma).exp()
    }

    fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.cached_gaussian.take() {
            return z;
        }
        // Box–Muller: two uniforms -> two independent standard normals.
        loop {
            let u1 = self.uniform();
            let u2 = self.uniform();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.cached_gaussian = Some(r * theta.sin());
            return r * theta.cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = NoiseRng::seed_from(1);
        let mut b = NoiseRng::seed_from(1);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = NoiseRng::seed_from(1);
        let mut b = NoiseRng::seed_from(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 32);
    }

    #[test]
    fn clone_duplicates_the_stream() {
        let mut a = NoiseRng::seed_from(77);
        a.uniform();
        let mut b = a.clone();
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = NoiseRng::seed_from(4);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = NoiseRng::seed_from(17);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gaussian_moments_roughly_match() {
        let mut rng = NoiseRng::seed_from(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn zero_sigma_is_exact() {
        let mut rng = NoiseRng::seed_from(5);
        assert_eq!(rng.gaussian(1.25, 0.0), 1.25);
        assert_eq!(rng.gaussian(1.25, -1.0), 1.25);
        assert_eq!(rng.lognormal(0.0, 0.0), 1.0);
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = NoiseRng::seed_from(7);
        for _ in 0..1000 {
            assert!(rng.lognormal(0.0, 0.5) > 0.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = NoiseRng::seed_from(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0)); // clamped
        assert!(!rng.chance(-1.0)); // clamped
    }

    #[test]
    fn chance_frequency() {
        let mut rng = NoiseRng::seed_from(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = NoiseRng::seed_from(8);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..32).filter(|_| c1.uniform() == c2.uniform()).count();
        assert!(same < 32);
    }

    #[test]
    fn zero_variance_draws_consume_no_randomness() {
        // Disabling a noise source by zeroing its sigma must not perturb
        // any other consumer's stream: the degenerate draws return the
        // mean without advancing the generator.
        let mut with_draws = NoiseRng::seed_from(21);
        let mut without = NoiseRng::seed_from(21);
        for _ in 0..8 {
            assert_eq!(with_draws.gaussian(2.5, 0.0), 2.5);
            assert_eq!(with_draws.gaussian(-1.0, -3.0), -1.0);
            assert_eq!(with_draws.lognormal(0.0, 0.0), 1.0);
        }
        for _ in 0..16 {
            assert_eq!(with_draws.next_u64(), without.next_u64());
        }
    }

    #[test]
    fn snapshot_preserves_the_cached_gaussian_spare() {
        // Snapshotting array state clones embedded noise sources; the
        // copy must continue bit-identically *including* the cached
        // Box–Muller spare, or a restored simulation would diverge on
        // its first post-snapshot Gaussian draw.
        let mut rng = NoiseRng::seed_from(123);
        rng.gaussian(0.0, 1.0); // populate the cached spare
        let mut restored = rng.clone();
        for _ in 0..32 {
            assert_eq!(
                rng.gaussian(1.0, 2.0).to_bits(),
                restored.gaussian(1.0, 2.0).to_bits()
            );
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn extreme_sigmas_stay_finite_and_positive_where_required() {
        let mut rng = NoiseRng::seed_from(31);
        for _ in 0..200 {
            let g = rng.gaussian(0.0, 1e12);
            assert!(g.is_finite(), "gaussian produced {g}");
            let l = rng.lognormal(0.0, 50.0);
            // A huge-sigma lognormal may overflow to +inf but can never
            // be negative, zero, or NaN — conductance factors stay sane.
            assert!(l > 0.0 && !l.is_nan(), "lognormal produced {l}");
        }
    }

    #[test]
    fn uniform_range_extreme_bounds_stay_in_range() {
        let mut rng = NoiseRng::seed_from(41);
        for _ in 0..1000 {
            let tiny = rng.uniform_range(f64::MIN_POSITIVE, 2.0 * f64::MIN_POSITIVE);
            assert!((f64::MIN_POSITIVE..2.0 * f64::MIN_POSITIVE).contains(&tiny));
            let huge = rng.uniform_range(1e300, 2e300);
            assert!((1e300..2e300).contains(&huge));
        }
    }

    #[test]
    fn nan_probability_is_a_deterministic_no() {
        let mut rng = NoiseRng::seed_from(51);
        assert!(!rng.chance(f64::NAN));
    }

    #[test]
    fn index_of_one_is_always_zero() {
        let mut rng = NoiseRng::seed_from(61);
        for _ in 0..100 {
            assert_eq!(rng.index(1), 0);
        }
    }

    #[test]
    fn fork_trees_reproduce_under_a_fixed_seed() {
        // Component-per-stream splitting must be reproducible: the same
        // parent seed yields the same whole tree of child streams.
        let mut parent_a = NoiseRng::seed_from(0xDA27);
        let mut parent_b = NoiseRng::seed_from(0xDA27);
        for _ in 0..4 {
            let mut child_a = parent_a.fork();
            let mut grandchild_a = child_a.fork();
            let mut child_b = parent_b.fork();
            let mut grandchild_b = child_b.fork();
            for _ in 0..8 {
                assert_eq!(child_a.next_u64(), child_b.next_u64());
                assert_eq!(grandchild_a.next_u64(), grandchild_b.next_u64());
            }
        }
    }

    #[test]
    fn index_within_bounds_and_covers_range() {
        let mut rng = NoiseRng::seed_from(13);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let i = rng.index(7);
            assert!(i < 7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }
}
