//! ReRAM device and array substrate shared by both PUM domains.
//!
//! This crate models the resistive memory devices that DARTH-PUM computes
//! with. Analog PUM stores multi-bit values as conductances and computes
//! matrix–vector products on bitlines; digital PUM stores single bits and
//! flips device state with Boolean primitives. Both sit on the same physical
//! substrate, which is what this crate provides:
//!
//! * [`device`] — a single ReRAM cell: conductance state, multi-level
//!   programming with write–verify, programming noise, read noise, drift and
//!   stuck-at faults.
//! * [`mod@array`] — a wordline × bitline array of cells with row/column views.
//! * [`noise`] — seeded, reproducible noise sources (Gaussian / lognormal).
//! * [`energy`] — a per-component energy meter used across the workspace.
//! * [`units`] — `Cycles`, `PicoJoules`, `SquareMicrons` newtypes so that
//!   latency, energy and area can never be mixed up.
//!
//! # Example
//!
//! ```
//! use darth_reram::{array::ReramArray, device::DeviceParams, noise::NoiseRng};
//!
//! # fn main() -> Result<(), darth_reram::Error> {
//! let params = DeviceParams::slc();
//! let mut rng = NoiseRng::seed_from(7);
//! let mut array = ReramArray::new(64, 64, params)?;
//! array.program_level(0, 0, 1, &mut rng)?;
//! assert!(array.cell(0, 0)?.as_bool());
//! # Ok(())
//! # }
//! ```

pub mod array;
pub mod device;
pub mod energy;
pub mod noise;
pub mod units;

pub use array::ReramArray;
pub use device::{Cell, DeviceParams, StuckAt};
pub use energy::EnergyMeter;
pub use noise::NoiseRng;
pub use units::{Cycles, PicoJoules, SquareMicrons};

use std::fmt;

/// Errors produced by the ReRAM substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A wordline or bitline index was outside the array bounds.
    OutOfBounds {
        /// Requested row (wordline) index.
        row: usize,
        /// Requested column (bitline) index.
        col: usize,
        /// Array row count.
        rows: usize,
        /// Array column count.
        cols: usize,
    },
    /// A programming level exceeded what the cell's bits-per-cell allows.
    LevelOutOfRange {
        /// Requested level.
        level: u16,
        /// Number of representable levels.
        levels: u16,
    },
    /// Array dimensions were zero or otherwise invalid.
    InvalidDimensions {
        /// Requested row count.
        rows: usize,
        /// Requested column count.
        cols: usize,
    },
    /// Device parameters are inconsistent (e.g. `g_off >= g_on`).
    InvalidDeviceParams(&'static str),
    /// Write–verify failed to converge within the iteration budget.
    WriteVerifyFailed {
        /// Target level that could not be programmed.
        level: u16,
        /// Iterations attempted.
        attempts: u32,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::OutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "cell ({row}, {col}) out of bounds for {rows}x{cols} array"
            ),
            Error::LevelOutOfRange { level, levels } => {
                write!(f, "level {level} out of range for {levels}-level cell")
            }
            Error::InvalidDimensions { rows, cols } => {
                write!(f, "invalid array dimensions {rows}x{cols}")
            }
            Error::InvalidDeviceParams(msg) => write!(f, "invalid device parameters: {msg}"),
            Error::WriteVerifyFailed { level, attempts } => write!(
                f,
                "write-verify did not converge to level {level} after {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, Error>;
