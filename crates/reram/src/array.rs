//! A wordline × bitline array of ReRAM cells.
//!
//! Both PUM domains in DARTH-PUM use 64×64 arrays (Table 2), but the type is
//! generic over dimensions so tests can exercise small arrays and future
//! configurations can scale. Rows are wordlines (inputs for analog MVM),
//! columns are bitlines (accumulation direction for analog, operand homes
//! for digital bit-striping).

use crate::device::{Cell, DeviceParams, StuckAt};
use crate::noise::NoiseRng;
use crate::{Error, Result};
use serde::{Deserialize, Serialize};

/// The array dimension used throughout the paper (Table 2).
pub const DEFAULT_DIM: usize = 64;

/// A rectangular array of ReRAM cells with shared device parameters.
///
/// # Example
///
/// ```
/// use darth_reram::{array::ReramArray, device::DeviceParams, noise::NoiseRng};
///
/// # fn main() -> Result<(), darth_reram::Error> {
/// let mut rng = NoiseRng::seed_from(3);
/// let mut array = ReramArray::new(4, 4, DeviceParams::slc())?;
/// array.set_bool(1, 2, true);
/// assert_eq!(array.row_bools(1)?, vec![false, false, true, false]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReramArray {
    rows: usize,
    cols: usize,
    params: DeviceParams,
    cells: Vec<Cell>,
    /// Writes that railed outside the device window (see [`Cell::program`]).
    saturated_writes: u64,
}

impl ReramArray {
    /// Creates an erased array.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDimensions`] for zero-sized arrays, or an
    /// invalid-parameter error if `params` is inconsistent.
    pub fn new(rows: usize, cols: usize, params: DeviceParams) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(Error::InvalidDimensions { rows, cols });
        }
        params.validate()?;
        let cells = vec![Cell::erased(&params); rows * cols];
        Ok(ReramArray {
            rows,
            cols,
            params,
            cells,
            saturated_writes: 0,
        })
    }

    /// Creates the paper's default 64×64 array.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation failures from [`ReramArray::new`].
    pub fn default_dim(params: DeviceParams) -> Result<Self> {
        ReramArray::new(DEFAULT_DIM, DEFAULT_DIM, params)
    }

    /// Number of wordlines (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bitlines (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The shared device parameters.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    fn idx(&self, row: usize, col: usize) -> Result<usize> {
        if row >= self.rows || col >= self.cols {
            return Err(Error::OutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok(row * self.cols + col)
    }

    /// Borrow a cell.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the coordinates exceed the array.
    pub fn cell(&self, row: usize, col: usize) -> Result<&Cell> {
        let i = self.idx(row, col)?;
        Ok(&self.cells[i])
    }

    /// Mutably borrow a cell.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the coordinates exceed the array.
    pub fn cell_mut(&mut self, row: usize, col: usize) -> Result<&mut Cell> {
        let i = self.idx(row, col)?;
        Ok(&mut self.cells[i])
    }

    /// Programs a multi-level value with write–verify (analog path).
    ///
    /// Saturated writes (draws railed outside the device window, see
    /// [`Cell::program`]) keep the clamped endpoint conductance and bump
    /// [`ReramArray::saturated_writes`].
    ///
    /// # Errors
    ///
    /// Propagates bounds and programming errors.
    pub fn program_level(
        &mut self,
        row: usize,
        col: usize,
        level: u16,
        rng: &mut NoiseRng,
    ) -> Result<()> {
        let params = self.params.clone();
        let cell = self.cell_mut(row, col)?;
        if cell.program(level, &params, rng)? {
            self.saturated_writes += 1;
        }
        Ok(())
    }

    /// How many writes so far railed outside the device window and were
    /// clamped to an endpoint instead of converging in the verify loop.
    pub fn saturated_writes(&self) -> u64 {
        self.saturated_writes
    }

    /// Sets a cell's Boolean state exactly (digital path).
    ///
    /// Out-of-bounds coordinates panic in debug terms of misuse; the digital
    /// pipeline always addresses within its own array, so this keeps the hot
    /// path free of `Result` plumbing.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates exceed the array bounds.
    pub fn set_bool(&mut self, row: usize, col: usize, value: bool) {
        let i = self
            .idx(row, col)
            .expect("digital access must stay within the array");
        let params = self.params.clone();
        self.cells[i].set_bool(value, &params);
    }

    /// Reads a cell's Boolean state.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates exceed the array bounds.
    pub fn get_bool(&self, row: usize, col: usize) -> bool {
        let i = self
            .idx(row, col)
            .expect("digital access must stay within the array");
        self.cells[i].as_bool()
    }

    /// The Boolean contents of one row (wordline).
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] for an invalid row.
    pub fn row_bools(&self, row: usize) -> Result<Vec<bool>> {
        self.idx(row, 0)?;
        Ok((0..self.cols).map(|c| self.get_bool(row, c)).collect())
    }

    /// The Boolean contents of one column (bitline).
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] for an invalid column.
    pub fn col_bools(&self, col: usize) -> Result<Vec<bool>> {
        self.idx(0, col)?;
        Ok((0..self.rows).map(|r| self.get_bool(r, col)).collect())
    }

    /// Writes a whole row of Boolean values.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if `row` is invalid or `values` is not
    /// exactly one element per column.
    pub fn set_row_bools(&mut self, row: usize, values: &[bool]) -> Result<()> {
        if values.len() != self.cols {
            return Err(Error::OutOfBounds {
                row,
                col: values.len(),
                rows: self.rows,
                cols: self.cols,
            });
        }
        for (col, &v) in values.iter().enumerate() {
            self.set_bool(row, col, v);
        }
        Ok(())
    }

    /// Writes a whole column of Boolean values.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if `col` is invalid or `values` is not
    /// exactly one element per row.
    pub fn set_col_bools(&mut self, col: usize, values: &[bool]) -> Result<()> {
        if values.len() != self.rows {
            return Err(Error::OutOfBounds {
                row: values.len(),
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        for (row, &v) in values.iter().enumerate() {
            self.set_bool(row, col, v);
        }
        Ok(())
    }

    /// Realised conductances of one column, with read noise applied.
    ///
    /// This is the quantity an analog bitline integrates during MVM.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] for an invalid column.
    pub fn col_conductances(&self, col: usize, rng: &mut NoiseRng) -> Result<Vec<f64>> {
        self.idx(0, col)?;
        Ok((0..self.rows)
            .map(|r| self.cells[r * self.cols + col].read_conductance(&self.params, rng))
            .collect())
    }

    /// Noise-free bitline accumulation for every column at once: for each
    /// column `c`, the sum over active rows (ascending, so floating-point
    /// results are bit-identical to a per-column walk) of
    /// `(g.max(0) - g_off).max(0) * scale`, where `g` is the cell's
    /// realised conductance.
    ///
    /// This is the deterministic fast path of the analog MVM: when the
    /// device population's `read_sigma` is zero,
    /// [`ReramArray::col_conductances`] degenerates to the stored
    /// conductances and consumes no RNG, so this single row-major pass
    /// computes exactly what per-column gathers would — without the
    /// per-column `Vec` allocations and per-device noise-model calls.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDimensions`] if `input` does not cover
    /// every row.
    pub fn masked_col_signals(&self, input: &[bool], g_off: f64, scale: f64) -> Result<Vec<f64>> {
        if input.len() != self.rows {
            return Err(Error::InvalidDimensions {
                rows: input.len(),
                cols: self.cols,
            });
        }
        let mut sums = vec![0.0f64; self.cols];
        for (r, &active) in input.iter().enumerate() {
            if !active {
                continue;
            }
            let row = &self.cells[r * self.cols..r * self.cols + self.cols];
            for (sum, cell) in sums.iter_mut().zip(row) {
                // Mirror read_conductance(sigma=0) + the bitline term
                // exactly: (g + 0).max(0), then zero-floored signal.
                *sum += (cell.conductance().max(0.0) - g_off).max(0.0) * scale;
            }
        }
        Ok(sums)
    }

    /// Injects stuck-at faults with the population's `stuck_at_rate`.
    ///
    /// Returns the number of cells that became stuck. Each faulty cell is
    /// stuck `Off` or `On` with equal probability.
    pub fn inject_stuck_at_faults(&mut self, rng: &mut NoiseRng) -> usize {
        let rate = self.params.stuck_at_rate;
        if rate <= 0.0 {
            return 0;
        }
        let params = self.params.clone();
        let mut injected = 0;
        for cell in &mut self.cells {
            if rng.chance(rate) {
                let stuck = if rng.chance(0.5) {
                    StuckAt::On
                } else {
                    StuckAt::Off
                };
                cell.set_stuck(stuck, &params);
                injected += 1;
            }
        }
        injected
    }

    /// Applies drift to every cell (see [`Cell::drift`]).
    pub fn drift_all(&mut self, decades: f64) {
        let params = self.params.clone();
        for cell in &mut self.cells {
            cell.drift(decades, &params);
        }
    }

    /// Erases every cell back to level 0.
    pub fn erase(&mut self) {
        let params = self.params.clone();
        for cell in &mut self.cells {
            if cell.stuck().is_none() {
                *cell = Cell::erased(&params);
            }
        }
    }

    /// Returns the array contents as a row-major Boolean matrix, the format
    /// the transpose unit (§4.2) shuffles between domains.
    pub fn to_bool_matrix(&self) -> Vec<Vec<bool>> {
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self.get_bool(r, c)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> NoiseRng {
        NoiseRng::seed_from(42)
    }

    #[test]
    fn rejects_zero_dimensions() {
        assert!(matches!(
            ReramArray::new(0, 4, DeviceParams::slc()),
            Err(Error::InvalidDimensions { .. })
        ));
        assert!(matches!(
            ReramArray::new(4, 0, DeviceParams::slc()),
            Err(Error::InvalidDimensions { .. })
        ));
    }

    #[test]
    fn default_dim_is_64() {
        let a = ReramArray::default_dim(DeviceParams::slc()).expect("valid");
        assert_eq!(a.rows(), 64);
        assert_eq!(a.cols(), 64);
    }

    #[test]
    fn out_of_bounds_cell_access() {
        let a = ReramArray::new(2, 2, DeviceParams::slc()).expect("valid");
        assert!(matches!(a.cell(2, 0), Err(Error::OutOfBounds { .. })));
        assert!(matches!(a.cell(0, 2), Err(Error::OutOfBounds { .. })));
    }

    #[test]
    fn row_and_col_round_trip() {
        let mut a = ReramArray::new(3, 3, DeviceParams::slc()).expect("valid");
        a.set_row_bools(1, &[true, false, true]).expect("fits");
        assert_eq!(a.row_bools(1).expect("in range"), vec![true, false, true]);
        a.set_col_bools(0, &[true, true, false]).expect("fits");
        assert_eq!(a.col_bools(0).expect("in range"), vec![true, true, false]);
        // row write must not disturb other rows beyond the shared (1,0) cell
        assert!(!a.get_bool(2, 0));
    }

    #[test]
    fn set_row_rejects_wrong_length() {
        let mut a = ReramArray::new(2, 3, DeviceParams::slc()).expect("valid");
        assert!(a.set_row_bools(0, &[true]).is_err());
        assert!(a.set_col_bools(0, &[true]).is_err());
    }

    #[test]
    fn program_level_and_col_conductances() {
        let p = DeviceParams::ideal(2).expect("valid");
        let mut a = ReramArray::new(2, 2, p.clone()).expect("valid");
        let mut r = rng();
        a.program_level(0, 0, 3, &mut r).expect("programs");
        a.program_level(1, 0, 0, &mut r).expect("programs");
        let g = a.col_conductances(0, &mut r).expect("in range");
        assert!((g[0] - p.g_on).abs() < 1e-15);
        assert!((g[1] - p.g_off).abs() < 1e-15);
    }

    #[test]
    fn saturated_writes_are_counted_and_stay_in_window() {
        let mut p = DeviceParams::mlc(2).expect("valid");
        p.program_sigma = 1e6;
        let g_on = p.g_on;
        let g_off = p.g_off;
        let mut a = ReramArray::new(4, 4, p).expect("valid");
        let mut r = rng();
        for row in 0..4 {
            for col in 0..4 {
                a.program_level(row, col, 2, &mut r).expect("clamped write");
                let g = a.cell(row, col).expect("in range").conductance();
                assert!(g.is_finite() && g >= g_off && g <= g_on);
            }
        }
        assert!(a.saturated_writes() > 0, "sigma 1e6 must rail some writes");
        // The clean-sigma path leaves the counter untouched.
        let mut clean = ReramArray::new(4, 4, DeviceParams::mlc(2).expect("valid")).expect("valid");
        clean.program_level(0, 0, 1, &mut rng()).expect("programs");
        assert_eq!(clean.saturated_writes(), 0);
    }

    #[test]
    fn stuck_at_injection_counts_match_state() {
        let mut p = DeviceParams::slc();
        p.stuck_at_rate = 0.5;
        let mut a = ReramArray::new(16, 16, p).expect("valid");
        let injected = a.inject_stuck_at_faults(&mut rng());
        let counted = (0..16)
            .flat_map(|r| (0..16).map(move |c| (r, c)))
            .filter(|&(r, c)| a.cell(r, c).expect("in range").stuck().is_some())
            .count();
        assert_eq!(injected, counted);
        assert!(injected > 32, "rate 0.5 over 256 cells, got {injected}");
    }

    #[test]
    fn erase_preserves_stuck_cells() {
        let p = DeviceParams::slc();
        let mut a = ReramArray::new(2, 2, p.clone()).expect("valid");
        a.cell_mut(0, 0)
            .expect("in range")
            .set_stuck(StuckAt::On, &p);
        a.set_bool(1, 1, true);
        a.erase();
        assert!(a.get_bool(0, 0), "stuck-on survives erase");
        assert!(!a.get_bool(1, 1), "normal cell erases");
    }

    #[test]
    fn to_bool_matrix_matches_cells() {
        let mut a = ReramArray::new(2, 3, DeviceParams::slc()).expect("valid");
        a.set_bool(0, 2, true);
        a.set_bool(1, 0, true);
        let m = a.to_bool_matrix();
        assert_eq!(m, vec![vec![false, false, true], vec![true, false, false]]);
    }

    #[test]
    fn drift_all_decays_programmed_cells() {
        let mut p = DeviceParams::slc();
        p.drift_nu = 0.2;
        let mut a = ReramArray::new(2, 2, p).expect("valid");
        a.set_bool(0, 0, true);
        let before = a.cell(0, 0).expect("in range").conductance();
        a.drift_all(2.0);
        assert!(a.cell(0, 0).expect("in range").conductance() < before);
    }
}
