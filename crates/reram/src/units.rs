//! Unit newtypes used across the workspace.
//!
//! The DARTH-PUM chip runs at 1 GHz (Section 6), so one [`Cycles`] tick is
//! one nanosecond of wall time. Energy is tracked in [`PicoJoules`] and area
//! in [`SquareMicrons`], matching the units of Table 3. The newtypes exist so
//! that latency, energy and area can never be accidentally mixed
//! (`C-NEWTYPE`).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Sub, SubAssign};

/// Clock frequency of the modelled DARTH-PUM chip, in Hz (Section 6: 1 GHz).
pub const CLOCK_HZ: f64 = 1.0e9;

/// A count of chip clock cycles at 1 GHz.
///
/// # Example
///
/// ```
/// use darth_reram::units::Cycles;
///
/// let adc = Cycles::new(256);
/// let io = Cycles::new(64);
/// assert_eq!((adc + io).get(), 320);
/// assert!(adc.to_seconds() > io.to_seconds());
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub const fn new(count: u64) -> Self {
        Cycles(count)
    }

    /// Returns the raw cycle count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Converts the count to wall-clock seconds at [`CLOCK_HZ`].
    pub fn to_seconds(self) -> f64 {
        self.0 as f64 / CLOCK_HZ
    }

    /// Saturating subtraction; clamps at zero instead of wrapping.
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two cycle counts (useful when overlapping pipelines).
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

/// Energy in picojoules.
///
/// # Example
///
/// ```
/// use darth_reram::units::PicoJoules;
///
/// let adc = PicoJoules::new(1.5);
/// let total = adc * 64.0;
/// assert!((total.get() - 96.0).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct PicoJoules(f64);

impl PicoJoules {
    /// Zero energy.
    pub const ZERO: PicoJoules = PicoJoules(0.0);

    /// Creates an energy amount in pJ.
    pub const fn new(pj: f64) -> Self {
        PicoJoules(pj)
    }

    /// Energy from a power draw (mW) sustained for a number of cycles.
    ///
    /// 1 mW × 1 ns = 1 pJ, so at the 1 GHz clock this is simply
    /// `milliwatts × cycles`.
    pub fn from_power(milliwatts: f64, cycles: Cycles) -> Self {
        PicoJoules(milliwatts * cycles.get() as f64)
    }

    /// Returns the raw pJ value.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Converts to joules.
    pub fn to_joules(self) -> f64 {
        self.0 * 1e-12
    }
}

impl Add for PicoJoules {
    type Output = PicoJoules;
    fn add(self, rhs: PicoJoules) -> PicoJoules {
        PicoJoules(self.0 + rhs.0)
    }
}

impl AddAssign for PicoJoules {
    fn add_assign(&mut self, rhs: PicoJoules) {
        self.0 += rhs.0;
    }
}

impl Sub for PicoJoules {
    type Output = PicoJoules;
    fn sub(self, rhs: PicoJoules) -> PicoJoules {
        PicoJoules(self.0 - rhs.0)
    }
}

impl Mul<f64> for PicoJoules {
    type Output = PicoJoules;
    fn mul(self, rhs: f64) -> PicoJoules {
        PicoJoules(self.0 * rhs)
    }
}

impl MulAssign<f64> for PicoJoules {
    fn mul_assign(&mut self, rhs: f64) {
        self.0 *= rhs;
    }
}

impl Div for PicoJoules {
    type Output = f64;
    fn div(self, rhs: PicoJoules) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for PicoJoules {
    fn sum<I: Iterator<Item = PicoJoules>>(iter: I) -> PicoJoules {
        PicoJoules(iter.map(|e| e.0).sum())
    }
}

impl fmt::Display for PicoJoules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} pJ", self.0)
    }
}

/// Silicon area in square microns, matching Table 3's units.
///
/// # Example
///
/// ```
/// use darth_reram::units::SquareMicrons;
///
/// let dce_array = SquareMicrons::new(240.0);
/// let pipeline = dce_array * 64.0;
/// assert!((pipeline.get() - 15_360.0).abs() < 1e-9);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct SquareMicrons(f64);

impl SquareMicrons {
    /// Zero area.
    pub const ZERO: SquareMicrons = SquareMicrons(0.0);

    /// Creates an area in µm².
    pub const fn new(um2: f64) -> Self {
        SquareMicrons(um2)
    }

    /// Returns the raw µm² value.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Converts to cm² (1 cm² = 1e8 µm²).
    pub fn to_cm2(self) -> f64 {
        self.0 / 1e8
    }

    /// Creates an area from cm².
    pub fn from_cm2(cm2: f64) -> Self {
        SquareMicrons(cm2 * 1e8)
    }
}

impl Add for SquareMicrons {
    type Output = SquareMicrons;
    fn add(self, rhs: SquareMicrons) -> SquareMicrons {
        SquareMicrons(self.0 + rhs.0)
    }
}

impl AddAssign for SquareMicrons {
    fn add_assign(&mut self, rhs: SquareMicrons) {
        self.0 += rhs.0;
    }
}

impl Sub for SquareMicrons {
    type Output = SquareMicrons;
    fn sub(self, rhs: SquareMicrons) -> SquareMicrons {
        SquareMicrons(self.0 - rhs.0)
    }
}

impl Mul<f64> for SquareMicrons {
    type Output = SquareMicrons;
    fn mul(self, rhs: f64) -> SquareMicrons {
        SquareMicrons(self.0 * rhs)
    }
}

impl Div for SquareMicrons {
    type Output = f64;
    fn div(self, rhs: SquareMicrons) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for SquareMicrons {
    fn sum<I: Iterator<Item = SquareMicrons>>(iter: I) -> SquareMicrons {
        SquareMicrons(iter.map(|a| a.0).sum())
    }
}

impl fmt::Display for SquareMicrons {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} um^2", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles::new(100);
        let b = Cycles::new(30);
        assert_eq!((a + b).get(), 130);
        assert_eq!((a - b).get(), 70);
        assert_eq!((a * 3).get(), 300);
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn cycles_to_seconds_at_1ghz() {
        assert!((Cycles::new(1_000_000_000).to_seconds() - 1.0).abs() < 1e-12);
        assert!((Cycles::new(1).to_seconds() - 1e-9).abs() < 1e-21);
    }

    #[test]
    fn cycles_sum() {
        let total: Cycles = (1..=4).map(Cycles::new).sum();
        assert_eq!(total.get(), 10);
    }

    #[test]
    fn picojoules_from_power() {
        // 8 mW for 10 cycles at 1 GHz = 80 pJ.
        let e = PicoJoules::from_power(8.0, Cycles::new(10));
        assert!((e.get() - 80.0).abs() < 1e-12);
    }

    #[test]
    fn picojoules_arithmetic() {
        let a = PicoJoules::new(2.0);
        let b = PicoJoules::new(0.5);
        assert!(((a + b).get() - 2.5).abs() < 1e-12);
        assert!(((a - b).get() - 1.5).abs() < 1e-12);
        assert!(((a * 4.0).get() - 8.0).abs() < 1e-12);
        assert!((a / b - 4.0).abs() < 1e-12);
        assert!((a.to_joules() - 2.0e-12).abs() < 1e-24);
    }

    #[test]
    fn area_round_trips_cm2() {
        let a = SquareMicrons::from_cm2(2.57);
        assert!((a.to_cm2() - 2.57).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Cycles::ZERO).is_empty());
        assert!(!format!("{}", PicoJoules::ZERO).is_empty());
        assert!(!format!("{}", SquareMicrons::ZERO).is_empty());
    }
}
