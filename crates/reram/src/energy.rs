//! Per-component energy accounting.
//!
//! Every architecture model in the workspace (DARTH-PUM itself, the CPU and
//! GPU baselines, the app accelerators) charges energy into an
//! [`EnergyMeter`] keyed by component name, so Figure 16 / Figure 17b /
//! Figure 18b can report both totals and breakdowns from the same source.

use crate::units::PicoJoules;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An accumulating energy meter with named components.
///
/// Component keys are free-form; conventionally they follow the rows of
/// Table 3 (`"dce.array"`, `"ace.sar_adc"`, `"front_end"`, …).
///
/// # Example
///
/// ```
/// use darth_reram::{energy::EnergyMeter, units::PicoJoules};
///
/// let mut meter = EnergyMeter::new();
/// meter.add("ace.sar_adc", PicoJoules::new(1.5));
/// meter.add("ace.sar_adc", PicoJoules::new(1.5));
/// meter.add("dce.array", PicoJoules::new(8.0));
/// assert!((meter.total().get() - 11.0).abs() < 1e-12);
/// assert!((meter.component("ace.sar_adc").get() - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    components: BTreeMap<String, PicoJoules>,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Charges `energy` against `component`.
    pub fn add(&mut self, component: &str, energy: PicoJoules) {
        *self
            .components
            .entry(component.to_owned())
            .or_insert(PicoJoules::ZERO) += energy;
    }

    /// Total energy across all components.
    pub fn total(&self) -> PicoJoules {
        self.components.values().copied().sum()
    }

    /// Energy charged to a single component (zero if never charged).
    pub fn component(&self, name: &str) -> PicoJoules {
        self.components
            .get(name)
            .copied()
            .unwrap_or(PicoJoules::ZERO)
    }

    /// Iterates `(component, energy)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, PicoJoules)> {
        self.components.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another meter into this one, component by component.
    pub fn merge(&mut self, other: &EnergyMeter) {
        for (name, energy) in other.iter() {
            self.add(name, energy);
        }
    }

    /// Fraction of total energy attributed to components whose name starts
    /// with `prefix` (used for the §7.3 observation that Boolean PUM ops are
    /// >88% of DARTH-PUM energy).
    pub fn fraction_with_prefix(&self, prefix: &str) -> f64 {
        let total = self.total().get();
        if total == 0.0 {
            return 0.0;
        }
        let part: f64 = self
            .components
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, e)| e.get())
            .sum();
        part / total
    }

    /// Resets the meter to empty.
    pub fn clear(&mut self) {
        self.components.clear();
    }

    /// True when nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

impl fmt::Display for EnergyMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            return write!(f, "EnergyMeter(empty)");
        }
        writeln!(f, "EnergyMeter(total = {}):", self.total())?;
        for (name, energy) in self.iter() {
            writeln!(f, "  {name:<24} {energy}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_meter_totals_zero() {
        let m = EnergyMeter::new();
        assert_eq!(m.total(), PicoJoules::ZERO);
        assert!(m.is_empty());
        assert_eq!(m.component("anything"), PicoJoules::ZERO);
    }

    #[test]
    fn components_accumulate() {
        let mut m = EnergyMeter::new();
        m.add("a", PicoJoules::new(1.0));
        m.add("a", PicoJoules::new(2.0));
        m.add("b", PicoJoules::new(4.0));
        assert!((m.component("a").get() - 3.0).abs() < 1e-12);
        assert!((m.total().get() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_by_component() {
        let mut a = EnergyMeter::new();
        a.add("x", PicoJoules::new(1.0));
        let mut b = EnergyMeter::new();
        b.add("x", PicoJoules::new(2.0));
        b.add("y", PicoJoules::new(3.0));
        a.merge(&b);
        assert!((a.component("x").get() - 3.0).abs() < 1e-12);
        assert!((a.component("y").get() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn prefix_fraction() {
        let mut m = EnergyMeter::new();
        m.add("dce.array", PicoJoules::new(88.0));
        m.add("ace.adc", PicoJoules::new(12.0));
        assert!((m.fraction_with_prefix("dce.") - 0.88).abs() < 1e-12);
        assert_eq!(EnergyMeter::new().fraction_with_prefix("dce."), 0.0);
    }

    #[test]
    fn clear_empties_the_meter() {
        let mut m = EnergyMeter::new();
        m.add("a", PicoJoules::new(1.0));
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn display_lists_components() {
        let mut m = EnergyMeter::new();
        m.add("dce.array", PicoJoules::new(8.0));
        let s = format!("{m}");
        assert!(s.contains("dce.array"));
        assert!(!format!("{}", EnergyMeter::new()).is_empty());
    }

    #[test]
    fn iter_is_name_ordered() {
        let mut m = EnergyMeter::new();
        m.add("zeta", PicoJoules::new(1.0));
        m.add("alpha", PicoJoules::new(1.0));
        let names: Vec<&str> = m.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
