//! A single ReRAM cell: conductance state and its non-idealities.
//!
//! Section 2.2 of the paper: analog PUM stores multiple bits per device as a
//! conductance in `[g_off, g_on]`; digital PUM uses the same devices in SLC
//! mode where only the fully-on / fully-off states matter. Programming uses
//! a write–verify loop whose residual error we model, following the
//! MILO-calibrated CrossSim setup of Section 6, as a multiplicative
//! lognormal factor on the target conductance. Reads add Gaussian noise;
//! devices can drift over time or become stuck at a fixed state (§7.5).

use crate::noise::NoiseRng;
use crate::{Error, Result};
use serde::{Deserialize, Serialize};

/// Physical and statistical parameters of a ReRAM device population.
///
/// # Example
///
/// ```
/// use darth_reram::device::DeviceParams;
///
/// let slc = DeviceParams::slc();
/// assert_eq!(slc.levels(), 2);
/// let mlc = DeviceParams::mlc(4).expect("4 bits per cell is supported");
/// assert_eq!(mlc.levels(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceParams {
    /// Bits stored per cell (1 for SLC digital PUM, up to 8 for analog).
    bits_per_cell: u8,
    /// Fully-on conductance in siemens (low-resistance state).
    pub g_on: f64,
    /// Fully-off conductance in siemens (high-resistance state).
    pub g_off: f64,
    /// Sigma of the lognormal multiplicative programming error.
    pub program_sigma: f64,
    /// Sigma of the additive Gaussian read noise, as a fraction of `g_on`.
    pub read_sigma: f64,
    /// Per-decade drift coefficient applied by [`Cell::drift`].
    pub drift_nu: f64,
    /// Probability that a freshly fabricated cell is stuck.
    pub stuck_at_rate: f64,
    /// Write–verify tolerance as a fraction of one level spacing.
    pub verify_tolerance: f64,
    /// Maximum write–verify iterations before giving up.
    pub max_program_attempts: u32,
}

impl DeviceParams {
    /// Single-level-cell parameters used by digital PUM and by the AES
    /// MixColumns matrix (§4.3 stores the AES matrix with 1-bit cells).
    pub fn slc() -> Self {
        DeviceParams {
            bits_per_cell: 1,
            g_on: 100e-6,
            g_off: 1e-6,
            program_sigma: 0.02,
            read_sigma: 0.01,
            drift_nu: 0.0,
            stuck_at_rate: 0.0,
            verify_tolerance: 0.25,
            max_program_attempts: 16,
        }
    }

    /// Multi-level-cell parameters with `bits` bits per cell.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDeviceParams`] when `bits` is zero or above 8
    /// (the paper cites 6–12 effective bits as the practical ceiling; the
    /// evaluation never exceeds 8).
    pub fn mlc(bits: u8) -> Result<Self> {
        if bits == 0 || bits > 8 {
            return Err(Error::InvalidDeviceParams(
                "bits per cell must be between 1 and 8",
            ));
        }
        Ok(DeviceParams {
            bits_per_cell: bits,
            ..DeviceParams::slc()
        })
    }

    /// Ideal (noise-free) variant, handy for functional verification.
    pub fn ideal(bits: u8) -> Result<Self> {
        let mut p = DeviceParams::mlc(bits)?;
        p.program_sigma = 0.0;
        p.read_sigma = 0.0;
        p.drift_nu = 0.0;
        p.stuck_at_rate = 0.0;
        Ok(p)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDeviceParams`] if the conductance window is
    /// empty or any sigma is negative.
    pub fn validate(&self) -> Result<()> {
        if self.g_off >= self.g_on {
            return Err(Error::InvalidDeviceParams("g_off must be below g_on"));
        }
        if self.g_off < 0.0 {
            return Err(Error::InvalidDeviceParams("g_off must be non-negative"));
        }
        if self.program_sigma < 0.0 || self.read_sigma < 0.0 {
            return Err(Error::InvalidDeviceParams("sigmas must be non-negative"));
        }
        if self.bits_per_cell == 0 || self.bits_per_cell > 8 {
            return Err(Error::InvalidDeviceParams(
                "bits per cell must be between 1 and 8",
            ));
        }
        Ok(())
    }

    /// Bits stored per cell.
    pub fn bits_per_cell(&self) -> u8 {
        self.bits_per_cell
    }

    /// Number of distinct programmable levels (`2^bits_per_cell`).
    pub fn levels(&self) -> u16 {
        1u16 << self.bits_per_cell
    }

    /// The ideal conductance for a level.
    ///
    /// Level 0 maps to `g_off`, the top level to `g_on`, with levels spaced
    /// uniformly in conductance (the convention used by ISAAC-style
    /// accelerators and CrossSim).
    pub fn level_conductance(&self, level: u16) -> f64 {
        let top = (self.levels() - 1) as f64;
        if top == 0.0 {
            return self.g_on;
        }
        self.g_off + (self.g_on - self.g_off) * (level as f64 / top)
    }

    /// Spacing between adjacent levels in siemens.
    pub fn level_spacing(&self) -> f64 {
        (self.g_on - self.g_off) / ((self.levels() - 1) as f64).max(1.0)
    }

    /// Returns a copy with all noise sources disabled.
    pub fn without_noise(&self) -> Self {
        DeviceParams {
            program_sigma: 0.0,
            read_sigma: 0.0,
            drift_nu: 0.0,
            stuck_at_rate: 0.0,
            ..self.clone()
        }
    }
}

/// A stuck-at fault (§7.5): the device no longer responds to programming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StuckAt {
    /// Stuck in the high-resistance (off) state.
    Off,
    /// Stuck in the low-resistance (on) state.
    On,
}

/// One ReRAM cell.
///
/// The cell remembers both the *target* level it was asked to store and the
/// *actual* conductance realised by the noisy write–verify loop, so digital
/// PUM can operate on exact bits while analog PUM sees the imperfect
/// conductance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    level: u16,
    conductance: f64,
    stuck: Option<StuckAt>,
    levels: u16,
}

impl Cell {
    /// A fresh cell in the erased (level-0) state.
    pub fn erased(params: &DeviceParams) -> Cell {
        Cell {
            level: 0,
            conductance: params.g_off,
            stuck: None,
            levels: params.levels(),
        }
    }

    /// The digitally intended level of this cell.
    pub fn level(&self) -> u16 {
        self.level
    }

    /// The realised analog conductance in siemens.
    pub fn conductance(&self) -> f64 {
        self.conductance
    }

    /// Whether the cell is stuck, and at which state.
    pub fn stuck(&self) -> Option<StuckAt> {
        self.stuck
    }

    /// Interprets the cell as a Boolean (digital SLC view): any nonzero
    /// level reads as `true`.
    pub fn as_bool(&self) -> bool {
        self.level != 0
    }

    /// Marks the cell stuck at the given state, forcing its level and
    /// conductance to the corresponding extreme.
    pub fn set_stuck(&mut self, stuck: StuckAt, params: &DeviceParams) {
        self.stuck = Some(stuck);
        match stuck {
            StuckAt::Off => {
                self.level = 0;
                self.conductance = params.g_off;
            }
            StuckAt::On => {
                self.level = params.levels() - 1;
                self.conductance = params.g_on;
            }
        }
    }

    /// Programs the cell to `level` with a write–verify loop.
    ///
    /// Each attempt perturbs the target conductance by a lognormal factor
    /// (`program_sigma`); the loop accepts the write once the realised
    /// conductance is within `verify_tolerance` of one level spacing, which
    /// mirrors a verify read against the two adjacent references.
    ///
    /// Returns `true` when the write **saturated**: the lognormal draw
    /// landed outside the device window `[g_off, g_on]` (or was not even
    /// finite — a huge `program_sigma` can overflow `exp`) and still missed
    /// the verify tolerance after clamping. The cell then keeps the clamped
    /// window-endpoint conductance instead of retrying forever, so a
    /// pathological sigma degrades accuracy rather than propagating `inf`
    /// or `NaN` into bitline sums. Returns `false` for a clean verify pass.
    ///
    /// Stuck cells silently ignore programming (that *is* the fault model);
    /// the caller can detect the condition via [`Cell::stuck`].
    ///
    /// # Errors
    ///
    /// * [`Error::LevelOutOfRange`] if `level` exceeds the cell's levels.
    /// * [`Error::WriteVerifyFailed`] if the loop does not converge on an
    ///   in-window draw. With default parameters this is vanishingly rare;
    ///   it exists so callers can surface pathological parameter choices
    ///   instead of looping forever.
    pub fn program(
        &mut self,
        level: u16,
        params: &DeviceParams,
        rng: &mut NoiseRng,
    ) -> Result<bool> {
        if level >= params.levels() {
            return Err(Error::LevelOutOfRange {
                level,
                levels: params.levels(),
            });
        }
        if self.stuck.is_some() {
            return Ok(false);
        }
        let target = params.level_conductance(level);
        let tolerance = params.verify_tolerance * params.level_spacing();
        let mut attempts = 0;
        loop {
            attempts += 1;
            let raw = target * rng.lognormal(0.0, params.program_sigma);
            let saturated = !raw.is_finite() || raw < params.g_off || raw > params.g_on;
            let realised = if raw.is_nan() {
                // 0 × inf (level 0 with g_off == 0): fall back to the target.
                target.clamp(params.g_off, params.g_on)
            } else {
                raw.clamp(params.g_off, params.g_on)
            };
            if (realised - target).abs() <= tolerance || params.program_sigma == 0.0 {
                self.level = level;
                self.conductance = realised;
                return Ok(false);
            }
            if saturated {
                self.level = level;
                self.conductance = realised;
                return Ok(true);
            }
            if attempts >= params.max_program_attempts {
                return Err(Error::WriteVerifyFailed { level, attempts });
            }
        }
    }

    /// Digital-PUM state flip: sets the Boolean state exactly.
    ///
    /// OSCAR primitives switch devices fully on or off; the paper treats
    /// digital PUM as error-free (§2.2.2, "minimal errors"), so this is an
    /// ideal write. Stuck cells ignore it.
    pub fn set_bool(&mut self, value: bool, params: &DeviceParams) {
        if self.stuck.is_some() {
            return;
        }
        if value {
            self.level = params.levels() - 1;
            self.conductance = params.g_on;
        } else {
            self.level = 0;
            self.conductance = params.g_off;
        }
    }

    /// Reads the conductance with additive Gaussian read noise.
    pub fn read_conductance(&self, params: &DeviceParams, rng: &mut NoiseRng) -> f64 {
        let noisy = self.conductance + rng.gaussian(0.0, params.read_sigma * params.g_on);
        noisy.max(0.0)
    }

    /// Applies conductance drift toward `g_off` over `decades` decades of
    /// time (a standard `G(t) = G0 * t^-nu` retention model).
    pub fn drift(&mut self, decades: f64, params: &DeviceParams) {
        if params.drift_nu <= 0.0 || decades <= 0.0 || self.stuck.is_some() {
            return;
        }
        let factor = 10f64.powf(-params.drift_nu * decades);
        self.conductance = (self.conductance * factor).max(params.g_off);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> NoiseRng {
        NoiseRng::seed_from(1234)
    }

    #[test]
    fn extreme_levels_program_to_the_window_endpoints_when_ideal() {
        // The lowest and highest conductance levels are the window edges
        // exactly under zero-variance parameters — the anchor the noise
        // model perturbs around.
        for bits in [1u8, 2, 4] {
            let p = DeviceParams::ideal(bits).expect("valid");
            let mut r = rng();
            let mut cell = Cell::erased(&p);
            cell.program(0, &p, &mut r).expect("programs");
            assert_eq!(cell.conductance().to_bits(), p.g_off.to_bits());
            cell.program(p.levels() - 1, &p, &mut r).expect("programs");
            assert_eq!(cell.conductance().to_bits(), p.g_on.to_bits());
            assert!(matches!(
                cell.program(p.levels(), &p, &mut r),
                Err(Error::LevelOutOfRange { .. })
            ));
        }
    }

    #[test]
    fn noisy_programming_is_deterministic_under_a_fixed_seed() {
        let p = DeviceParams::mlc(2).expect("valid");
        let run = |seed: u64| -> Vec<u64> {
            let mut r = NoiseRng::seed_from(seed);
            let mut cell = Cell::erased(&p);
            (0..p.levels())
                .map(|level| {
                    cell.program(level, &p, &mut r).expect("programs");
                    cell.conductance().to_bits()
                })
                .collect()
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }

    #[test]
    fn pathological_sigma_saturates_to_the_window_instead_of_erroring() {
        // A huge lognormal sigma rails every draw far outside the device
        // window (often to literal +inf). The write must clamp to a window
        // endpoint, report saturation, and never leave a non-finite
        // conductance behind.
        let mut p = DeviceParams::mlc(4).expect("valid");
        p.program_sigma = 1e6;
        let mut r = rng();
        let mut any_saturated = false;
        for level in 0..p.levels() {
            let mut cell = Cell::erased(&p);
            let saturated = cell.program(level, &p, &mut r).expect("clamped write");
            any_saturated |= saturated;
            assert!(cell.conductance().is_finite());
            assert!(cell.conductance() >= p.g_off && cell.conductance() <= p.g_on);
            assert_eq!(cell.level(), level);
        }
        assert!(any_saturated, "sigma 1e6 must rail at least one write");
    }

    #[test]
    fn in_window_writes_never_report_saturation() {
        let p = DeviceParams::mlc(4).expect("valid");
        let mut r = rng();
        let mut cell = Cell::erased(&p);
        for level in 0..p.levels() {
            assert!(!cell.program(level, &p, &mut r).expect("programs"));
        }
    }

    #[test]
    fn slc_has_two_levels() {
        let p = DeviceParams::slc();
        assert_eq!(p.levels(), 2);
        assert_eq!(p.bits_per_cell(), 1);
        p.validate().expect("slc params are valid");
    }

    #[test]
    fn mlc_rejects_bad_bit_counts() {
        assert!(DeviceParams::mlc(0).is_err());
        assert!(DeviceParams::mlc(9).is_err());
        assert!(DeviceParams::mlc(8).is_ok());
    }

    #[test]
    fn validate_rejects_inverted_window() {
        let mut p = DeviceParams::slc();
        p.g_off = p.g_on * 2.0;
        assert!(matches!(p.validate(), Err(Error::InvalidDeviceParams(_))));
    }

    #[test]
    fn level_conductance_endpoints() {
        let p = DeviceParams::mlc(2).expect("valid");
        assert!((p.level_conductance(0) - p.g_off).abs() < 1e-15);
        assert!((p.level_conductance(3) - p.g_on).abs() < 1e-15);
        let mid = p.level_conductance(1);
        assert!(mid > p.g_off && mid < p.g_on);
    }

    #[test]
    fn program_and_read_back_level() {
        let p = DeviceParams::mlc(4).expect("valid");
        let mut rng = rng();
        let mut cell = Cell::erased(&p);
        for level in 0..p.levels() {
            cell.program(level, &p, &mut rng).expect("programs");
            assert_eq!(cell.level(), level);
            let g = cell.conductance();
            // within one full level spacing of the target
            assert!((g - p.level_conductance(level)).abs() <= p.level_spacing());
        }
    }

    #[test]
    fn program_rejects_out_of_range_level() {
        let p = DeviceParams::slc();
        let mut cell = Cell::erased(&p);
        let err = cell.program(2, &p, &mut rng()).unwrap_err();
        assert!(matches!(err, Error::LevelOutOfRange { level: 2, .. }));
    }

    #[test]
    fn ideal_params_program_exactly() {
        let p = DeviceParams::ideal(3).expect("valid");
        let mut cell = Cell::erased(&p);
        cell.program(5, &p, &mut rng()).expect("programs");
        assert!((cell.conductance() - p.level_conductance(5)).abs() < 1e-18);
    }

    #[test]
    fn stuck_cells_ignore_programming() {
        let p = DeviceParams::slc();
        let mut cell = Cell::erased(&p);
        cell.set_stuck(StuckAt::On, &p);
        cell.program(0, &p, &mut rng()).expect("no-op succeeds");
        assert!(cell.as_bool());
        cell.set_bool(false, &p);
        assert!(cell.as_bool());
    }

    #[test]
    fn set_bool_round_trips() {
        let p = DeviceParams::slc();
        let mut cell = Cell::erased(&p);
        cell.set_bool(true, &p);
        assert!(cell.as_bool());
        assert!((cell.conductance() - p.g_on).abs() < 1e-15);
        cell.set_bool(false, &p);
        assert!(!cell.as_bool());
        assert!((cell.conductance() - p.g_off).abs() < 1e-15);
    }

    #[test]
    fn read_noise_is_zero_mean() {
        let p = DeviceParams::slc();
        let mut r = rng();
        let mut cell = Cell::erased(&p);
        cell.set_bool(true, &p);
        let n = 5000;
        let mean: f64 = (0..n)
            .map(|_| cell.read_conductance(&p, &mut r))
            .sum::<f64>()
            / n as f64;
        assert!((mean - p.g_on).abs() < 0.05 * p.g_on);
    }

    #[test]
    fn drift_decays_conductance() {
        let mut p = DeviceParams::slc();
        p.drift_nu = 0.1;
        let mut cell = Cell::erased(&p);
        cell.set_bool(true, &p);
        let before = cell.conductance();
        cell.drift(1.0, &p);
        assert!(cell.conductance() < before);
        assert!(cell.conductance() >= p.g_off);
    }

    #[test]
    fn without_noise_strips_all_sigmas() {
        let p = DeviceParams::mlc(4).expect("valid").without_noise();
        assert_eq!(p.program_sigma, 0.0);
        assert_eq!(p.read_sigma, 0.0);
        assert_eq!(p.stuck_at_rate, 0.0);
    }
}
