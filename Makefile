# DARTH-PUM reproduction — one-command recipes for the tier-1 gate and the
# supporting checks. `make verify` is the whole tier-1 recipe.

CARGO ?= cargo

.PHONY: all build test verify doc lint fmt fmt-check bench bench-check figures eval clean

all: verify

## Tier-1 gate (release build + full test suite) plus the PR-1 lint
## gates: clippy and rustfmt, both warnings-as-errors.
verify: build test lint fmt-check

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

## Rustdoc for every workspace crate; warnings are errors.
doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --workspace --no-deps

## Clippy across all targets; warnings are errors.
lint:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

fmt:
	$(CARGO) fmt

fmt-check:
	$(CARGO) fmt --check

## Criterion benches (offline vendor harness; see vendor/criterion).
bench:
	$(CARGO) bench -p darth_bench

## Compile benches + examples without running them.
bench-check:
	$(CARGO) bench -p darth_bench --no-run
	$(CARGO) build --examples

## Regenerate every paper figure/table binary (prints to stdout; each
## also drops a BENCH_<figure>.json report).
figures:
	@for bin in fig7 fig13 fig14 fig15 fig16 fig17 fig18 tables noise_accuracy; do \
		echo "==== $$bin ===="; \
		$(CARGO) run -q --release -p darth_bench --bin $$bin; \
	done

## Price the full extended workload x architecture matrix through the
## evaluation engine (serial vs parallel timing) and write BENCH_eval.json.
eval:
	$(CARGO) run -q --release -p darth_bench --bin eval

clean:
	$(CARGO) clean
