# DARTH-PUM reproduction — one-command recipes for the tier-1 gate and the
# supporting checks. `make verify` is the whole tier-1 recipe.

CARGO ?= cargo

## Virtual-memory ceiling (KB) for `make eval-large`: 2 GiB. The
## streaming pipeline prices a ≥1M-block AES stream well under it; the
## materialized path needs ~3 GB of KernelOps and dies, by design.
EVAL_LARGE_CAP_KB ?= 2097152

## Wall-clock budget (seconds) for the scaled fast-vs-reference gate in
## `make sim-verify`: the 1000-block bulk-AES executor-pair run takes a
## few seconds on the fast path; the budget exists so a fast-path
## performance regression fails the gate instead of quietly crawling.
## Generous because a cold tree pays the release build inside it.
SIM_VERIFY_BUDGET_S ?= 600

.PHONY: all build test verify doc lint fmt fmt-check bench bench-check figures eval eval-large equivalence dse dse-smoke sim-verify kir-verify serve serve-smoke mc mc-smoke clean

all: verify

## Tier-1 gate (release build + full test suite) plus the PR-1 lint
## gates: clippy and rustfmt, both warnings-as-errors — the
## streaming/materialized equivalence regression, the DSE smoke sweep,
## the functional-simulator differential gate, and the serving smoke
## suite, explicitly.
verify: build test lint fmt-check equivalence dse-smoke sim-verify kir-verify serve-smoke mc-smoke

## The golden-model differential gate: the standard registry
## (AES-128/192/256 on FIPS-197 vectors, integer GEMM, a conv layer)
## executes on the functional ISA simulator and must match its golden
## software references bit-exactly, cell by cell, while the paired
## priced twins flow through the analytical engine. The fast path
## (packed bit-planes + precompiled dispatch + sharded tiles) then
## replays the executor-pair suite in release at bulk scale — 1000 AES
## blocks — and must match the reference interpreter result-, energy-
## and cycle-exactly. Also refuses any `#[ignore]`d test in the tier-1
## tree — a silently skipped differential case must fail the build,
## not hide.
sim-verify:
	@if grep -rn "\#\[ignore" --include='*.rs' crates src tests examples 2>/dev/null; then \
		echo "ERROR: ignored tests are not allowed in the tier-1 tree"; \
		exit 1; \
	fi
	$(CARGO) test -q -p darth_sim --test differential
	$(CARGO) test -q -p darth_eval --test sim_differential
	DARTH_SIM_BULK_BLOCKS=1000 timeout $(SIM_VERIFY_BUDGET_S) \
		$(CARGO) test -q --release -p darth_sim --test fast_vs_reference
	$(CARGO) test -q --release -p darth_sim --test shard_determinism

## The kernel-IR compiler gate: the darth_kir unit + property suites
## (verifier diagnostics, allocator reuse/pressure, encode → decode →
## re-encode round trips, the split-concatenation invariant) and the
## hand-lowering parity regression (per-mnemonic histograms, analog-op
## counts, cycles and energy pinned against the pre-compiler baselines).
## Also part of `make test`; kept addressable so `make verify` names it.
kir-verify:
	$(CARGO) test -q -p darth_kir
	$(CARGO) test -q -p darth_sim --test kir_parity

## The registry-wide bit-identity regression: price(stream) ==
## price(&Trace) == engine replay for every (workload, model) cell,
## serial and parallel. Also part of `make test`; kept addressable so
## the guarantee is auditable on its own.
equivalence:
	$(CARGO) test -q -p darth_eval --test streaming_equivalence

## The DSE smoke sweep: a small config grid over the paper workloads,
## serial == parallel bit-identical, with the paper's SAR/ramp design
## points asserted byte-identical to the BENCH_fig13.json pricing. Also
## part of `make test`; kept addressable so `make verify` names it.
dse-smoke:
	$(CARGO) test -q -p darth_eval --test dse

## The serving smoke suite: a small bursty trace on a fleet from the
## real DSE smoke-sweep frontier — resident-program cache hits,
## sustained >= offered at low load with zero rejections, served
## outputs bit-exact against the reference executor and software
## goldens, batch coalescing + bounded-queue rejection under overload,
## and serving determinism at worker counts {1, 2, 64} plus the
## DARTH_EVAL_THREADS paths. Also part of `make test`; kept
## addressable so `make verify` names it.
serve-smoke:
	$(CARGO) test -q -p darth_serve --test smoke
	$(CARGO) test -q -p darth_serve --test determinism

## The Monte-Carlo accuracy smoke suite: zero-sigma noise-injected
## trials reproduce the golden registry bit-exactly across the DSE
## smoke grid, a noisy campaign is bit-identical across worker counts
## {1, 2, 64} and reruns (plus the property suite over random seeds),
## noise-off executions consume zero RNG draws on the full path, and
## accuracy attaches to the darth-dse-sweep/v2 JSON. Also part of
## `make test`; kept addressable so `make verify` names it.
mc-smoke:
	$(CARGO) test -q -p darth_eval --test mc_smoke
	$(CARGO) test -q -p darth_sim --test noise_determinism

## The Monte-Carlo accuracy campaign at the paper's SAR and ramp design
## points: noise-injected trials of the standard functional workloads
## (zero-sigma gate first), per-workload error statistics and trial
## throughput; writes BENCH_mc.json. Tune with DARTH_MC_TRIALS.
mc:
	$(CARGO) run -q --release -p darth_bench --bin mc

## The serving benchmark: a >=1M-request deterministic bursty trace,
## mixed over the standard class registry, served on an 8-chip fleet
## from the default DSE sweep's Pareto frontier; writes
## BENCH_serve.json (offered vs sustained throughput, p50/p99/p999
## latency, batch histogram, cache hit rates, per-chip utilization,
## warm-vs-cold resident-program comparison). Tune with
## DARTH_SERVE_REQUESTS / DARTH_SERVE_SEED / DARTH_SERVE_LOAD.
serve:
	$(CARGO) run -q --release -p darth_bench --bin serve

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

## Rustdoc for every workspace crate; warnings are errors.
doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --workspace --no-deps

## Clippy across all targets; warnings are errors.
lint:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

fmt:
	$(CARGO) fmt

fmt-check:
	$(CARGO) fmt --check

## Criterion benches (offline vendor harness; see vendor/criterion).
bench:
	$(CARGO) bench -p darth_bench

## Compile benches + examples without running them.
bench-check:
	$(CARGO) bench -p darth_bench --no-run
	$(CARGO) build --examples

## Regenerate every paper figure/table binary (prints to stdout; each
## also drops a BENCH_<figure>.json report).
figures:
	@for bin in fig7 fig13 fig14 fig15 fig16 fig17 fig18 tables noise_accuracy; do \
		echo "==== $$bin ===="; \
		$(CARGO) run -q --release -p darth_bench --bin $$bin; \
	done

## Price the full extended workload x architecture matrix through the
## evaluation engine (serial vs parallel timing) and write BENCH_eval.json.
eval:
	$(CARGO) run -q --release -p darth_bench --bin eval

## The design-space sweep: the default 48-config grid (ADC kind x
## resolution x crossbar geometry x slicing x clock) priced on the full
## extended workload registry, with Pareto frontiers and best-config
## tables; writes BENCH_dse.json.
dse:
	$(CARGO) run -q --release -p darth_bench --bin dse

## Price the bulk scenarios (>=1M-block AES, seq-4096 + GPT-2-XL
## encoders, ResNet-110) under a hard memory ceiling, writing
## BENCH_eval_large.json — then demonstrate that the materialized path
## cannot fit under the same ceiling (its OOM abort is the expected
## outcome of the second step).
eval-large: build
	@echo "== streaming pipeline under ulimit -v $(EVAL_LARGE_CAP_KB) KB =="
	@bash -c 'ulimit -v $(EVAL_LARGE_CAP_KB); exec ./target/release/eval_large'
	@echo "== materialized path under the same ceiling (expected to fail) =="
	@if bash -c 'ulimit -v $(EVAL_LARGE_CAP_KB); exec ./target/release/eval_large --materialized' 2>/dev/null; then \
		echo "ERROR: the materialized path fit under the cap — the demonstration is broken"; \
		exit 1; \
	else \
		echo "materialized path exceeded the $(EVAL_LARGE_CAP_KB) KB cap, as expected"; \
	fi

clean:
	$(CARGO) clean
